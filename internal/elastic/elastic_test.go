package elastic

import (
	"context"
	"math"
	"testing"
	"time"

	"aceso/internal/hardware"
	"aceso/internal/obs"
	"aceso/internal/runtime"
)

const tol = 1e-9

// TestElasticTrainSurvivesFault is the end-to-end acceptance test:
// train N iterations, kill a device at iteration k, Replan on the
// degraded cluster, reshard the last checkpoint, resume to N — and the
// stitched loss trajectory plus the final parameters must match an
// uninterrupted run on the original config to float tolerance.
func TestElasticTrainSurvivesFault(t *testing.T) {
	g := buildMLP(t)
	cfgA := uniformCfg(t, g, 2, 2, 2, 1, 4) // pp2 × tp2 on 4 devices
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	const iters = 6

	base := runtime.InitParams(g, 7)
	base.Opt = runtime.Adam

	ref := base.Clone()
	refLosses, err := runtime.Parallel(g, cfgA, ref, x, y, lr, iters)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	rep, err := Train(context.Background(), g, cl, cfgA, base.Clone(), x, y, iters,
		&runtime.FaultPlan{Rank: 2, Iteration: 3},
		Options{
			LR:              lr,
			CheckpointEvery: 2,
			Dir:             t.TempDir(), // exercise the file round trip
			CommDeadline:    10 * time.Second,
			SearchBudget:    300 * time.Millisecond,
			Metrics:         reg,
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsInjected != 1 || rep.Reshards != 1 {
		t.Fatalf("faults %d, reshards %d; want 1, 1", rep.FaultsInjected, rep.Reshards)
	}
	if rep.Config == cfgA {
		t.Error("no replanned config: still training on the original plan")
	}
	if rep.Config.TotalDevices() >= 4 {
		t.Errorf("replanned config uses %d devices, want < 4 after losing one", rep.Config.TotalDevices())
	}
	if len(rep.Losses) != iters || rep.FinalStep != iters {
		t.Fatalf("losses %d, final step %d; want %d iterations", len(rep.Losses), rep.FinalStep, iters)
	}
	for i := 1; i < len(rep.Steps); i++ {
		if rep.Steps[i] <= rep.Steps[i-1] {
			t.Fatalf("step counter not monotone: %v", rep.Steps)
		}
	}
	for i := range refLosses {
		if math.Abs(refLosses[i]-rep.Losses[i]) > tol {
			t.Errorf("iter %d: uninterrupted %.12f vs elastic %.12f", i, refLosses[i], rep.Losses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d > tol {
		t.Errorf("final state differs by %g from uninterrupted run", d)
	}
	if rep.ReshardBytesMoved <= 0 {
		t.Errorf("reshard moved %d bytes, want > 0 (plan changed)", rep.ReshardBytesMoved)
	}
	if rep.Recovery <= 0 {
		t.Error("recovery duration not recorded")
	}

	// Metrics flowed through the registry.
	for _, name := range []string{
		obs.ElasticFaultsInjectedTotal, obs.ElasticCheckpointsTotal,
		obs.ElasticRestoresTotal, obs.ElasticReshardsTotal,
		obs.ElasticReshardBytesMovedTotal,
	} {
		if reg.Counter(name).Value() == 0 {
			t.Errorf("metric %s = 0, want > 0", name)
		}
	}
	if reg.Timer(obs.ElasticRecovery).Count() == 0 {
		t.Errorf("recovery timer has no observations")
	}
}

// TestElasticTrainNoFault: without a fault the driver is just segmented
// training — identical to one Parallel call, checkpoints and all.
func TestElasticTrainNoFault(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	const iters = 4

	ref := runtime.InitParams(g, 7)
	ref.Opt = runtime.Adam
	refLosses, err := runtime.Parallel(g, cfg, ref, x, y, lr, iters)
	if err != nil {
		t.Fatal(err)
	}

	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam
	rep, err := Train(context.Background(), g, cl, cfg, p, x, y, iters, nil, Options{LR: lr})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsInjected != 0 || rep.Reshards != 0 {
		t.Fatalf("unexpected recovery events: %+v", rep)
	}
	if rep.Checkpoints != iters+1 {
		t.Errorf("checkpoints %d, want %d (every iteration + step 0)", rep.Checkpoints, iters+1)
	}
	for i := range refLosses {
		if math.Abs(refLosses[i]-rep.Losses[i]) > tol {
			t.Errorf("iter %d: %v vs %v", i, refLosses[i], rep.Losses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d > tol {
		t.Errorf("final state differs by %g", d)
	}
}

// TestElasticTrainRejectsBadFault: out-of-range fault plans are caught
// before any training happens.
func TestElasticTrainRejectsBadFault(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 1, 1, 1, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(1)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	if _, err := Train(context.Background(), g, cl, cfg, p, x, y, 3,
		&runtime.FaultPlan{Rank: 0, Iteration: 3}, Options{LR: lr}); err == nil {
		t.Fatal("fault at iteration == iters accepted")
	}
}
