package elastic

import (
	"testing"

	"aceso/internal/config"
	"aceso/internal/model"
	"aceso/internal/runtime"
)

// FuzzCheckpointLoadNeverPanics pins the decoder's robustness contract:
// arbitrary, truncated or bit-flipped bytes must come back as a typed
// error — never a panic, never a runaway allocation. Checkpoints are
// the recovery path; a decoder that crashes on a torn file turns a
// survivable fault into an unrecoverable one.
func FuzzCheckpointLoadNeverPanics(f *testing.F) {
	g, err := model.MLP(2, 4, 4)
	if err != nil {
		f.Fatal(err)
	}
	p := runtime.InitParams(g, 1)
	p.Opt = runtime.Adam
	cfg, err := config.Balanced(g, 2, 2, 2)
	if err != nil {
		f.Fatal(err)
	}
	st, err := ShardState(g, cfg, p)
	if err != nil {
		f.Fatal(err)
	}
	good := Encode(st)

	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:headerLen])
	f.Add([]byte{})
	f.Add([]byte("ACESOCKP"))
	// Bit-flipped header and payload variants.
	for _, off := range []int{0, 9, 12, headerLen + 3, len(good) - 4} {
		mut := append([]byte(nil), good...)
		mut[off] ^= 0x80
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			if st != nil {
				t.Fatal("Decode returned both state and error")
			}
			return
		}
		// Whatever decoded must survive the rest of the pipeline without
		// panicking: re-encode always, assemble when coverage is exact.
		reenc := Encode(st)
		if _, err := Decode(reenc); err != nil {
			t.Fatalf("re-encode of decoded state does not decode: %v", err)
		}
		_, _ = AssembleState(st)
	})
}
