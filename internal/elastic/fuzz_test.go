package elastic

import (
	"context"
	"math"
	"testing"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

// FuzzCheckpointLoadNeverPanics pins the decoder's robustness contract:
// arbitrary, truncated or bit-flipped bytes must come back as a typed
// error — never a panic, never a runaway allocation. Checkpoints are
// the recovery path; a decoder that crashes on a torn file turns a
// survivable fault into an unrecoverable one.
func FuzzCheckpointLoadNeverPanics(f *testing.F) {
	g, err := model.MLP(2, 4, 4)
	if err != nil {
		f.Fatal(err)
	}
	p := runtime.InitParams(g, 1)
	p.Opt = runtime.Adam
	cfg, err := config.Balanced(g, 2, 2, 2)
	if err != nil {
		f.Fatal(err)
	}
	st, err := ShardState(g, cfg, p)
	if err != nil {
		f.Fatal(err)
	}
	good := Encode(st)

	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:headerLen])
	f.Add([]byte{})
	f.Add([]byte("ACESOCKP"))
	// Bit-flipped header and payload variants.
	for _, off := range []int{0, 9, 12, headerLen + 3, len(good) - 4} {
		mut := append([]byte(nil), good...)
		mut[off] ^= 0x80
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			if st != nil {
				t.Fatal("Decode returned both state and error")
			}
			return
		}
		// Whatever decoded must survive the rest of the pipeline without
		// panicking: re-encode always, assemble when coverage is exact.
		reenc := Encode(st)
		if _, err := Decode(reenc); err != nil {
			t.Fatalf("re-encode of decoded state does not decode: %v", err)
		}
		_, _ = AssembleState(st)
	})
}

// FuzzChurnEventsNeverPanic pins the supervisor's robustness contract:
// an arbitrary byte-derived churn schedule — out-of-range devices,
// NaN/Inf scales, unknown kinds, hostile orderings — either validates
// and runs to a report, or comes back as a typed error. Never a panic,
// never a hang: the supervisor is the component that must outlive the
// faults it manages.
func FuzzChurnEventsNeverPanic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})                          // one preempt of device 0 at iteration 0
	f.Add([]byte{0, 0, 1, 0, 0, 1, 1, 0, 0, 0})           // preempt then readd
	f.Add([]byte{0, 2, 0, 200, 0, 1, 3, 0, 255, 0})       // slow-node + link derate variants
	f.Add([]byte{5, 17, 99, 254, 7, 3, 3, 3, 3, 3, 3, 3}) // out-of-range everything

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := model.MLP(2, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := config.Balanced(g, 2, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		cl := hardware.DGX1V100(1).Restrict(2)

		// Decode 5 bytes per event, mapping select byte values onto the
		// hostile corners of the domain (negative iterations, NaN/Inf
		// scales) that plain byte arithmetic cannot reach.
		var spec ChurnSpec
		for i := 0; i+5 <= len(data) && len(spec.Events) < 16; i += 5 {
			iter := int(data[i]) % 8
			if data[i] == 255 {
				iter = -1
			}
			scale := float64(data[i+3]) / 255
			switch data[i+4] {
			case 250:
				scale = math.NaN()
			case 251:
				scale = math.Inf(1)
			case 252:
				scale = -0.5
			case 253:
				scale = 1
			}
			spec.Events = append(spec.Events, ChurnEvent{
				Iteration: iter,
				Kind:      ChurnKind(data[i+1] % 6), // includes invalid kinds
				Device:    int(data[i+2])%4 - 1,     // includes -1 and out-of-range
				Scale:     scale,
			})
		}

		p := runtime.InitParams(g, 1)
		p.Opt = runtime.Adam
		x := tensor.New(4, 4)
		y := tensor.New(4, 4)
		for i := range x.Data {
			x.Data[i] = float64(i%7) * 0.1
			y.Data[i] = float64(i%5) * 0.1
		}
		opt := SuperviseOptions{
			Options: Options{
				LR:           0.05,
				CommDeadline: 5 * time.Second,
				SearchBudget: 10 * time.Millisecond,
			},
			BackoffBase: time.Microsecond,
			BackoffCap:  2 * time.Microsecond,
		}
		rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, 2, spec, opt)
		if err != nil {
			return // typed rejection (invalid spec, stall, ...) is fine
		}
		if rep == nil || rep.FinalStep < 0 {
			t.Fatalf("nil/absurd report without error: %+v", rep)
		}
		for _, l := range rep.Losses {
			if math.IsNaN(l) || math.IsInf(l, 0) {
				t.Fatalf("non-finite loss %v in report", l)
			}
		}
	})
}

// FuzzPreemptNoticeNeverPanics pins the notice-drain state machine's
// robustness contract: arbitrary notice/preempt interleavings with
// arbitrary windows and checkpoint costs — duplicate notices, notices
// for dead devices, deadlines past the end of the run, windows shorter
// than the cost, notices racing unnoticed preempts — either run to a
// coherent report or come back as a typed error. Never a panic: the
// drain path exists precisely so reclaims stay survivable.
func FuzzPreemptNoticeNeverPanics(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{2, 4, 2, 2}, uint8(1))       // clean covered drain
	f.Add([]byte{2, 4, 2, 0}, uint8(3))       // window < cost: missed
	f.Add([]byte{1, 4, 3, 2, 2, 0, 3, 0}, uint8(1)) // notice then real preempt
	f.Add([]byte{0, 4, 2, 7, 0, 4, 2, 7}, uint8(0)) // duplicate notices
	f.Add([]byte{255, 4, 0, 255, 3, 4, 1, 1}, uint8(255)) // hostile corners

	f.Fuzz(func(t *testing.T, data []byte, ckptCost uint8) {
		g, err := model.MLP(2, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := config.Balanced(g, 2, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		cl := hardware.DGX1V100(1).Restrict(2)

		// Decode 4 bytes per event: iteration, kind selector (notice /
		// preempt / readd), device, notice window — including negative
		// windows and deadlines far past the end of the run.
		var spec ChurnSpec
		for i := 0; i+4 <= len(data) && len(spec.Events) < 12; i += 4 {
			iter := int(data[i]) % 6
			if data[i] == 255 {
				iter = -1
			}
			kind := PreemptNotice
			switch data[i+1] % 4 {
			case 0:
				kind = Preempt
			case 1:
				kind = Readd
			}
			notice := int(data[i+3]) % 9
			if data[i+3] == 255 {
				notice = -1
			}
			spec.Events = append(spec.Events, ChurnEvent{
				Iteration: iter,
				Kind:      kind,
				Device:    int(data[i+2])%4 - 1,
				Notice:    notice,
			})
		}

		p := runtime.InitParams(g, 1)
		p.Opt = runtime.Adam
		x := tensor.New(4, 4)
		y := tensor.New(4, 4)
		for i := range x.Data {
			x.Data[i] = float64(i%7) * 0.1
			y.Data[i] = float64(i%5) * 0.1
		}
		opt := SuperviseOptions{
			Options: Options{
				LR:           0.05,
				CommDeadline: 5 * time.Second,
				SearchBudget: 10 * time.Millisecond,
			},
			BackoffBase:    time.Microsecond,
			BackoffCap:     2 * time.Microsecond,
			CheckpointCost: int(ckptCost) % 7,
		}
		rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, 4, spec, opt)
		if err != nil {
			return // typed rejection (invalid spec, stall, ...) is fine
		}
		if rep == nil || rep.FinalStep < 0 {
			t.Fatalf("nil/absurd report without error: %+v", rep)
		}
		if rep.CleanDrains+rep.NoticesMissed > rep.Notices+rep.EventCounts["preempt-notice"] {
			t.Fatalf("drain accounting exceeds notices: %+v", rep)
		}
		if len(rep.NoticeMisses) != rep.NoticesMissed {
			t.Fatalf("NoticeMisses len %d != NoticesMissed %d", len(rep.NoticeMisses), rep.NoticesMissed)
		}
		for _, l := range rep.Losses {
			if math.IsNaN(l) || math.IsInf(l, 0) {
				t.Fatalf("non-finite loss %v in report", l)
			}
		}
	})
}
