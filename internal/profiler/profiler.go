// Package profiler is the analytic stand-in for the paper's
// profiling-based operator database (§3.3).
//
// The paper runs every operator 50 times on V100 GPUs under each
// partition method and stores the averaged time in a database that is
// reused across searches. Without GPUs we synthesize that database:
// operator times come from a roofline-style model (FLOPs over
// utilization-scaled peak throughput, plus a kernel-launch overhead),
// and every entry carries a small deterministic perturbation derived
// from its key — the stable measurement noise a profiled average would
// bake in. Entries are memoized exactly like the reusable database the
// paper describes, and can be saved/loaded as JSON.
package profiler

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"

	"aceso/internal/collective"
	"aceso/internal/hardware"
	"aceso/internal/memo"
	"aceso/internal/model"
)

const (
	// launchOverhead is the fixed per-kernel dispatch cost (seconds).
	launchOverhead = 4e-6
	// halfUtilFLOPs is the per-kernel work at which a kernel reaches
	// half of MaxUtil; smaller kernels are launch/memory bound (a V100
	// matmul needs tens of GFLOPs before tensor cores saturate). This
	// is what makes over-sharding small operators — and over-splitting
	// microbatches — unprofitable (the Wide-ResNet case study in §5.4).
	halfUtilFLOPs = 10e9
	// perturbAmp is the amplitude of the deterministic per-entry
	// perturbation (±4%), standing in for profiling noise.
	perturbAmp = 0.04
)

// opKey identifies one operator-database entry. A struct key keeps
// lookups allocation-free on the search's hot path.
type opKey struct {
	name            string
	tp, dim         int
	samples, shards int
	backward        bool
	prec            hardware.Precision
}

// appendTo appends the key's serialized form to b. Byte-identical to
// the historical fmt.Sprintf("op|%s|%d|%d|%d|%d|%v|%v", ...) format —
// the perturbation hash and the Save/Load format both depend on these
// exact bytes — without fmt's reflection and allocations on the
// database-miss path.
func (k opKey) appendTo(b []byte) []byte {
	b = append(b, "op|"...)
	b = append(b, k.name...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(k.tp), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(k.dim), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(k.samples), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(k.shards), 10)
	b = append(b, '|')
	b = strconv.AppendBool(b, k.backward)
	b = append(b, '|')
	b = append(b, k.prec.String()...)
	return b
}

// String renders the key for the serialized database format (Save);
// hot-path code uses appendTo with a stack buffer instead.
func (k opKey) String() string {
	return string(k.appendTo(make([]byte, 0, 64)))
}

// opMapKey is opKey's database-map form: the numeric fields packed
// into one word so the per-lookup hash covers a string and a uint64
// instead of a seven-field struct. OpTime is the single hottest memo
// lookup of the search (every operator of every uncached stage), and
// the wide struct key's hash and equality showed up in CPU profiles.
type opMapKey struct {
	name string
	bits uint64
}

// Field widths of the packed key. tp and shards are parallelism
// degrees bounded by the cluster size (1<<13 covers 8192 devices),
// samples by the global batch, dim by an op's partition choices.
const (
	opkTPBits      = 13
	opkDimBits     = 8
	opkSamplesBits = 21
	opkShardsBits  = 13
)

// pack folds the numeric fields into one word. ok=false means a field
// exceeds its width — the caller must then compute without memoizing
// (the database would need the wide key), which stays correct because
// every entry is a pure function of its key.
func (k opKey) pack() (opMapKey, bool) {
	if k.tp >= 1<<opkTPBits || k.dim >= 1<<opkDimBits ||
		k.samples >= 1<<opkSamplesBits || k.shards >= 1<<opkShardsBits ||
		k.tp < 0 || k.dim < 0 || k.samples < 0 || k.shards < 0 ||
		k.prec < 0 || k.prec > 3 {
		return opMapKey{}, false
	}
	b := uint64(k.tp)
	b = b<<opkDimBits | uint64(k.dim)
	b = b<<opkSamplesBits | uint64(k.samples)
	b = b<<opkShardsBits | uint64(k.shards)
	b <<= 3
	if k.backward {
		b |= 1 << 2
	}
	b |= uint64(k.prec) & 3
	return opMapKey{k.name, b}, true
}

// unpack inverts pack (lossless for in-range fields), so Save can
// reconstruct the serialized key text from the map form.
func (k opMapKey) unpack() opKey {
	b := k.bits
	out := opKey{name: k.name, prec: hardware.Precision(b & 3), backward: b&(1<<2) != 0}
	b >>= 3
	out.shards = int(b & (1<<opkShardsBits - 1))
	b >>= opkShardsBits
	out.samples = int(b & (1<<opkSamplesBits - 1))
	b >>= opkSamplesBits
	out.dim = int(b & (1<<opkDimBits - 1))
	b >>= opkDimBits
	out.tp = int(b)
	return out
}

// parseOpKey inverts String; reports ok=false on malformed input.
func parseOpKey(s string) (opKey, bool) {
	var k opKey
	var backward, prec string
	parts := strings.Split(s, "|")
	if len(parts) != 8 || parts[0] != "op" {
		return k, false
	}
	k.name = parts[1]
	if _, err := fmt.Sscanf(strings.Join(parts[2:], "|"), "%d|%d|%d|%d|%s",
		&k.tp, &k.dim, &k.samples, &k.shards, &backward); err != nil {
		return k, false
	}
	// backward holds "true|fp16"-style remainder; split again.
	bp := strings.Split(backward, "|")
	if len(bp) == 2 {
		backward, prec = bp[0], bp[1]
	} else {
		return k, false
	}
	k.backward = backward == "true"
	if prec == "fp32" {
		k.prec = hardware.FP32
	}
	return k, true
}

// Profiler produces operator and collective times for one cluster. It
// is safe for concurrent use by the parallel stage-count searches.
// The memo maps are snapshot-based (see memo.SnapMap) so the hit path —
// taken for every operator of every evaluated stage — is lock-free.
type Profiler struct {
	Cluster hardware.Cluster
	Seed    int64

	db    memo.SnapMap[opMapKey, float64]
	cmult memo.SnapMap[collKey, float64]
}

// collKey identifies a collective perturbation multiplier.
type collKey struct {
	kind  byte // 'r' all-reduce, 'g' all-gather, 'p' p2p
	group int
	pl    collective.Placement
}

// New returns a Profiler for the cluster with a deterministic seed.
func New(c hardware.Cluster, seed int64) *Profiler {
	return &Profiler{Cluster: c, Seed: seed}
}

// collPerturb memoizes the perturbation multiplier for a collective.
func (p *Profiler) collPerturb(kind byte, group int, pl collective.Placement) float64 {
	key := collKey{kind, group, pl}
	if v, ok := p.cmult.Load(key); ok {
		return v
	}
	var m float64
	// Byte-identical to fmt.Sprintf("%c|%d|%d", kind, group, pl): kind
	// is always an ASCII letter, so %c emits the byte itself.
	var buf [32]byte
	b := append(buf[:0], kind, '|')
	b = strconv.AppendInt(b, int64(group), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(pl), 10)
	m = p.perturb(b)
	p.cmult.Store(key, m)
	return m
}

// perturb returns a deterministic multiplier in [1-perturbAmp, 1+perturbAmp]
// derived from the entry key and the profiler seed. The hashed byte
// stream is identical to the historical fmt.Fprintf(h, "%d|%s", ...).
func (p *Profiler) perturb(key []byte) float64 {
	h := fnv.New64a()
	var buf [24]byte
	b := strconv.AppendInt(buf[:0], p.Seed, 10)
	b = append(b, '|')
	h.Write(b)
	h.Write(key)
	u := float64(h.Sum64()%(1<<20)) / float64(1<<20) // [0, 1)
	return 1 - perturbAmp + 2*perturbAmp*u
}

// OpTime returns the execution time of one operator invocation.
//
//	op       the operator
//	tp       tensor-parallel degree of the op
//	dim      index into op.Dims (the sharding choice)
//	samples  per-data-parallel-replica sample count of the microbatch
//	shards   effective compute sharding (tp when the op's tensors are
//	         split, 1 when the op runs replicated on every tp rank)
//	backward whether this is the backward pass
//	prec     numeric precision of the model
func (p *Profiler) OpTime(op *model.Op, tp, dim, samples, shards int, backward bool, prec hardware.Precision) float64 {
	if samples <= 0 || shards <= 0 {
		return 0
	}
	if tp <= 1 {
		// An unsharded op runs the same kernel regardless of its
		// nominal partition dim; normalize so the database agrees.
		dim = 0
	}
	key := opKey{op.Name, tp, dim, samples, shards, backward, prec}
	mk, packable := key.pack()
	if packable {
		if v, ok := p.db.Load(mk); ok {
			return v
		}
	}
	var t float64

	flops := op.FwdFLOPs * float64(samples) / float64(shards)
	if backward {
		flops *= op.BwdFLOPsFactor
	}
	peak := p.Cluster.PeakFLOPS(prec)
	util := p.Cluster.MaxUtil * flops / (flops + halfUtilFLOPs)
	t = launchOverhead
	if flops > 0 && util > 0 {
		t += flops / (peak * util)
	}
	var kb [96]byte
	t *= p.perturb(key.appendTo(kb[:0]))

	if packable {
		p.db.Store(mk, t)
	}
	return t
}

// AllReduce returns the profiled time of an all-reduce over the
// device range starting at first. The perturbation stream is keyed on
// (kind, group, placement) only — two same-shaped groups at different
// ranks share a multiplier, so homogeneous clusters are priced exactly
// as before; the range enters solely through the class-aware link.
func (p *Profiler) AllReduce(bytes float64, first, group int, pl collective.Placement) float64 {
	if group <= 1 || bytes <= 0 {
		return 0
	}
	t := collective.AllReduceAt(&p.Cluster, bytes, first, group, pl)
	return t * p.collPerturb('r', group, pl)
}

// AllGather returns the profiled time of an all-gather over the device
// range starting at first.
func (p *Profiler) AllGather(bytes float64, first, group int, pl collective.Placement) float64 {
	if group <= 1 || bytes <= 0 {
		return 0
	}
	t := collective.AllGatherAt(&p.Cluster, bytes, first, group, pl)
	return t * p.collPerturb('g', group, pl)
}

// P2P returns the profiled time of a stage-boundary transfer into the
// device pair starting at first.
func (p *Profiler) P2P(bytes float64, first int, pl collective.Placement) float64 {
	if bytes <= 0 {
		return 0
	}
	t := collective.P2PAt(&p.Cluster, bytes, first, pl)
	return t * p.collPerturb('p', 0, pl)
}

// Entries returns the number of memoized operator entries.
func (p *Profiler) Entries() int { return p.db.Len() }

// Save writes the memoized database as JSON, mirroring the reusable
// profiled database of §3.3.
func (p *Profiler) Save(w io.Writer) error {
	out := make(map[string]float64, p.db.Len())
	p.db.ForEach(func(k opMapKey, v float64) {
		out[k.unpack().String()] = v
	})
	return json.NewEncoder(w).Encode(out)
}

// Load replaces the memoized database with entries read from r. Every
// entry must be a finite, non-negative time: a poisoned database (NaN,
// Inf or negative entries — e.g. a truncated or hand-edited JSON file)
// is rejected here so garbage never reaches the performance model,
// where a single NaN would silently corrupt every comparison it
// touches (NaN compares false against any bound).
func (p *Profiler) Load(r io.Reader) error {
	raw := make(map[string]float64)
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return fmt.Errorf("profiler: load: %w", err)
	}
	db := make(map[opMapKey]float64, len(raw))
	for s, v := range raw {
		k, ok := parseOpKey(s)
		if !ok {
			return fmt.Errorf("profiler: load: malformed key %q", s)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("profiler: load: entry %q has invalid time %v", s, v)
		}
		mk, packable := k.pack()
		if !packable {
			return fmt.Errorf("profiler: load: entry %q out of packable range", s)
		}
		db[mk] = v
	}
	// Validation passed in full — only now touch the live database, so
	// a rejected file leaves the profiler unchanged.
	p.db.Replace(db)
	return nil
}

// Prewarm fills the database for every operator of g under the given
// tensor-parallel degrees and per-replica sample counts, using one
// goroutine per operator. The paper profiles operators sequentially
// and notes that "the profiling overhead can be highly improved with
// good parallelization. We leave this as future work" — this is that
// parallelization.
func (p *Profiler) Prewarm(g *model.Graph, tps, samples []int) {
	var wg sync.WaitGroup
	for i := range g.Ops {
		wg.Add(1)
		go func(op *model.Op) {
			defer wg.Done()
			for _, tp := range tps {
				for d := range op.Dims {
					for _, n := range samples {
						for _, bwd := range []bool{false, true} {
							p.OpTime(op, tp, d, n, tp, bwd, g.Precision)
							if tp > 1 {
								p.OpTime(op, tp, d, n, 1, bwd, g.Precision)
							}
						}
					}
				}
			}
		}(&g.Ops[i])
	}
	wg.Wait()
}
