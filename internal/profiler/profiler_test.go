package profiler

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"aceso/internal/collective"
	"aceso/internal/hardware"
	"aceso/internal/model"
)

func testOp() *model.Op {
	g := model.Uniform(1, 1e12, 1e6, 1e5, 64)
	return &g.Ops[0]
}

// The database format and the perturbation hash both depend on the
// exact bytes of the key serialization; a drift in appendTo would
// silently change every profiled time and orphan saved databases.
func TestOpKeyAppendMatchesFmt(t *testing.T) {
	keys := []opKey{
		{"linear", 4, 1, 8, 4, true, hardware.FP16},
		{"ln", 1, 0, 1, 1, false, hardware.FP32},
		{"attn|odd", 32, 2, 1024, 32, true, hardware.FP16},
	}
	for _, k := range keys {
		want := fmt.Sprintf("op|%s|%d|%d|%d|%d|%v|%v",
			k.name, k.tp, k.dim, k.samples, k.shards, k.backward, k.prec)
		if got := k.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
		if got := string(k.appendTo(nil)); got != want {
			t.Errorf("appendTo = %q, want %q", got, want)
		}
	}
}

func TestOpTimeDeterministic(t *testing.T) {
	p := New(hardware.DGX1V100(1), 42)
	op := testOp()
	a := p.OpTime(op, 2, 0, 4, 2, false, hardware.FP16)
	b := p.OpTime(op, 2, 0, 4, 2, false, hardware.FP16)
	if a != b {
		t.Errorf("OpTime not deterministic: %v vs %v", a, b)
	}
	q := New(hardware.DGX1V100(1), 42)
	if c := q.OpTime(op, 2, 0, 4, 2, false, hardware.FP16); c != a {
		t.Errorf("OpTime differs across profilers with same seed: %v vs %v", c, a)
	}
}

func TestOpTimeScalesWithWorkAndShards(t *testing.T) {
	p := New(hardware.DGX1V100(1), 1)
	op := testOp()
	t1 := p.OpTime(op, 1, 0, 1, 1, false, hardware.FP16)
	t8 := p.OpTime(op, 1, 0, 8, 1, false, hardware.FP16)
	if t8 <= t1 {
		t.Errorf("more samples should take longer: %v vs %v", t8, t1)
	}
	sharded := p.OpTime(op, 8, 0, 8, 8, false, hardware.FP16)
	if sharded >= t8 {
		t.Errorf("8-way sharding should beat unsharded: %v vs %v", sharded, t8)
	}
}

func TestShardingEfficiencyDegrades(t *testing.T) {
	// A small op sharded 8 ways should retain well under 8× speedup —
	// the effect behind the Wide-ResNet case study (§5.4).
	p := New(hardware.DGX1V100(1), 1)
	g := model.Uniform(1, 5e8, 1e6, 1e5, 64) // small kernel
	op := &g.Ops[0]
	t1 := p.OpTime(op, 1, 0, 1, 1, false, hardware.FP32)
	t8 := p.OpTime(op, 8, 0, 1, 8, false, hardware.FP32)
	speedup := t1 / t8
	if speedup >= 6 {
		t.Errorf("speedup = %.2f, want sublinear (< 6) for a small kernel", speedup)
	}
	if t8 >= t1 {
		t.Errorf("sharding should still help: %v vs %v", t8, t1)
	}
}

func TestBackwardCostsMore(t *testing.T) {
	p := New(hardware.DGX1V100(1), 1)
	op := testOp() // BwdFLOPsFactor = 2
	fwd := p.OpTime(op, 1, 0, 4, 1, false, hardware.FP16)
	bwd := p.OpTime(op, 1, 0, 4, 1, true, hardware.FP16)
	if bwd <= fwd {
		t.Errorf("backward (%v) should exceed forward (%v)", bwd, fwd)
	}
	if bwd > 2.5*fwd {
		t.Errorf("backward (%v) should be ≈2× forward (%v)", bwd, fwd)
	}
}

func TestFP32SlowerThanFP16(t *testing.T) {
	p := New(hardware.DGX1V100(1), 1)
	op := testOp()
	f16 := p.OpTime(op, 1, 0, 4, 1, false, hardware.FP16)
	f32 := p.OpTime(op, 1, 0, 4, 1, false, hardware.FP32)
	if f32 <= f16 {
		t.Errorf("fp32 (%v) should be slower than fp16 (%v)", f32, f16)
	}
}

func TestZeroInputs(t *testing.T) {
	p := New(hardware.DGX1V100(1), 1)
	op := testOp()
	if got := p.OpTime(op, 1, 0, 0, 1, false, hardware.FP16); got != 0 {
		t.Errorf("OpTime(samples=0) = %v, want 0", got)
	}
	if got := p.AllReduce(0, 0, 8, collective.IntraNode); got != 0 {
		t.Errorf("AllReduce(0 bytes) = %v, want 0", got)
	}
	if got := p.AllReduce(1e6, 0, 1, collective.IntraNode); got != 0 {
		t.Errorf("AllReduce(group 1) = %v, want 0", got)
	}
	if got := p.P2P(0, 0, collective.InterNode); got != 0 {
		t.Errorf("P2P(0) = %v, want 0", got)
	}
}

func TestPerturbationBounded(t *testing.T) {
	p := New(hardware.DGX1V100(1), 7)
	// The perturbed collective time must stay within ±4% of analytic.
	c := p.Cluster
	for _, g := range []int{2, 4, 8, 16} {
		base := collective.AllReduce(&c, 1e8, g, collective.InterNode)
		got := p.AllReduce(1e8, 0, g, collective.InterNode)
		if got < base*(1-perturbAmp)-1e-15 || got > base*(1+perturbAmp)+1e-15 {
			t.Errorf("group %d: perturbed %v outside ±4%% of %v", g, got, base)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := New(hardware.DGX1V100(1), 9)
	op := testOp()
	want := p.OpTime(op, 4, 0, 2, 4, true, hardware.FP16)
	if p.Entries() != 1 {
		t.Fatalf("Entries() = %d, want 1", p.Entries())
	}

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q := New(hardware.DGX1V100(1), 9)
	if err := q.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if q.Entries() != 1 {
		t.Fatalf("after Load, Entries() = %d, want 1", q.Entries())
	}
	if got := q.OpTime(op, 4, 0, 2, 4, true, hardware.FP16); got != want {
		t.Errorf("loaded DB returns %v, want %v", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	p := New(hardware.DGX1V100(1), 9)
	if err := p.Load(strings.NewReader("not json")); err == nil {
		t.Fatal("Load(garbage) should fail")
	}
}

func TestPrewarmFillsDatabaseConcurrently(t *testing.T) {
	g, err := model.GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	p := New(hardware.DGX1V100(1), 3)
	p.Prewarm(g, []int{1, 2, 4}, []int{1, 2})
	warm := p.Entries()
	if warm == 0 {
		t.Fatal("Prewarm filled nothing")
	}
	// Subsequent queries hit the warm database (no growth).
	op := &g.Ops[1]
	p.OpTime(op, 2, 0, 1, 2, false, hardware.FP16)
	if p.Entries() != warm {
		t.Errorf("entries grew from %d to %d after a pre-warmed query", warm, p.Entries())
	}
	// Prewarmed values equal lazily computed ones.
	q := New(hardware.DGX1V100(1), 3)
	if got, want := q.OpTime(op, 2, 0, 1, 2, false, hardware.FP16),
		p.OpTime(op, 2, 0, 1, 2, false, hardware.FP16); got != want {
		t.Errorf("prewarmed %v != lazy %v", want, got)
	}
}

func TestLoadRejectsMalformedKeys(t *testing.T) {
	p := New(hardware.DGX1V100(1), 1)
	for _, bad := range []string{
		`{"nonsense": 1}`,
		`{"op|x|1": 2}`,
		`{"op|x|a|b|c|d|e|f": 2}`,
	} {
		if err := p.Load(strings.NewReader(bad)); err == nil {
			t.Errorf("Load(%s) accepted", bad)
		}
	}
}

func TestSaveLoadLargeDatabase(t *testing.T) {
	g, err := model.WideResNet("0.5B")
	if err != nil {
		t.Fatal(err)
	}
	p := New(hardware.DGX1V100(1), 2)
	p.Prewarm(g, []int{1, 2}, []int{1})
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q := New(hardware.DGX1V100(1), 2)
	if err := q.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if q.Entries() != p.Entries() {
		t.Errorf("entries %d != %d after round trip", q.Entries(), p.Entries())
	}
	// Spot-check a value survives exactly.
	op := &g.Ops[0]
	if q.OpTime(op, 2, 0, 1, 2, false, hardware.FP32) != p.OpTime(op, 2, 0, 1, 2, false, hardware.FP32) {
		t.Error("round-tripped value differs")
	}
}

func TestLoadRejectsPoisonedValues(t *testing.T) {
	// A valid key with an invalid time: negative values parse as JSON
	// but must never enter the database (non-finite literals like NaN
	// are already unrepresentable in JSON and fail at decode time).
	key := opKey{"mlp", 1, 0, 1, 1, false, hardware.FP16}.String()
	for _, bad := range []string{
		`{"` + key + `": -1}`,
		`{"` + key + `": -1e30}`,
		`{"` + key + `": 1e999}`, // overflows float64 → decode error
		`{"` + key + `": 1`,      // truncated JSON
	} {
		p := New(hardware.DGX1V100(1), 1)
		if err := p.Load(strings.NewReader(bad)); err == nil {
			t.Errorf("Load(%s) accepted a poisoned database", bad)
		}
		if p.Entries() != 0 {
			t.Errorf("Load(%s) left %d entries behind", bad, p.Entries())
		}
	}
}
