package profiler

import (
	"testing"

	"aceso/internal/hardware"
)

// FuzzParseOpKey asserts the serialized-key codec: String∘parse is the
// identity on valid keys, and arbitrary strings never panic.
func FuzzParseOpKey(f *testing.F) {
	f.Add("op|qkv|2|0|4|2|true|fp16")
	f.Add("op|mlp1|1|1|8|1|false|fp32")
	f.Add("op||0|0|0|0|x|y")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		k, ok := parseOpKey(s)
		if !ok {
			return
		}
		// Round trip through the canonical form.
		k2, ok2 := parseOpKey(k.String())
		if !ok2 {
			t.Fatalf("canonical form %q of %q does not parse", k.String(), s)
		}
		if k2 != k {
			t.Fatalf("round trip changed key: %+v vs %+v", k, k2)
		}
	})
}

// FuzzOpKeyRoundTrip drives the codec from the struct side.
func FuzzOpKeyRoundTrip(f *testing.F) {
	f.Add("qkv", 2, 1, 4, 2, true, false)
	f.Fuzz(func(t *testing.T, name string, tp, dim, samples, shards int, backward, fp32 bool) {
		for _, r := range name {
			if r == '|' || r == '\n' {
				t.Skip() // names never contain separators
			}
		}
		prec := hardware.FP16
		if fp32 {
			prec = hardware.FP32
		}
		k := opKey{name, tp, dim, samples, shards, backward, prec}
		k2, ok := parseOpKey(k.String())
		if !ok {
			t.Fatalf("own String() %q does not parse", k.String())
		}
		if k2 != k {
			t.Fatalf("round trip: %+v vs %+v", k, k2)
		}
	})
}
