// Command aceso searches, estimates and simulates parallel-training
// configurations from the terminal.
//
// Usage:
//
//	aceso search   -model gpt3 -size 1.3B -gpus 4 [-budget 2s] [-maxhops 7] [-seed 1]
//	aceso estimate -model gpt3 -size 1.3B -gpus 4 -pp 2 -tp 2 -dp 1 -mbs 1 [-recompute]
//	aceso baseline -model gpt3 -size 1.3B -gpus 4            # Megatron grid + Alpa-like
//
// search prints the best found configuration, its performance-model
// estimate, and the runtime simulator's verdict. estimate evaluates a
// manual (Megatron-style global) configuration. baseline runs the two
// comparison systems on the same workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aceso/internal/baselines/alpa"
	"aceso/internal/baselines/megatron"
	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
	"aceso/internal/pipesim"
	"aceso/internal/profiler"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "search":
		err = runSearch(os.Args[2:])
	case "estimate":
		err = runEstimate(os.Args[2:])
	case "baseline":
		err = runBaseline(os.Args[2:])
	case "profile":
		err = runProfile(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aceso:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: aceso <search|estimate|baseline|profile> [flags]
  aceso search   -model gpt3 -size 1.3B -gpus 4 [-budget 2s] [-maxhops 7] [-seed 1] [-db db.json]
  aceso estimate -model gpt3 -size 1.3B -gpus 4 -pp 2 -tp 2 -dp 1 -mbs 1 [-recompute]
  aceso baseline -model gpt3 -size 1.3B -gpus 4
  aceso profile  -model gpt3 -size 1.3B -gpus 4 -o profile-db.json
models: gpt3 (350M 1.3B 2.6B 6.7B 13B), t5 (770M 3B 6B 11B 22B),
        wresnet (0.5B 2B 4B 6.8B 13B), llama (8B 70B),
        deep-<layers> (e.g. deep-1024)`)
}

// workload parses the shared -model/-size/-gpus flags.
func workload(fs *flag.FlagSet) (get func() (*model.Graph, hardware.Cluster, error)) {
	mdl := fs.String("model", "gpt3", "model family: gpt3, t5, wresnet, deep-<layers>")
	size := fs.String("size", "1.3B", "model size label (Table 2)")
	gpus := fs.Int("gpus", 4, "number of GPUs (V100-32GB, 8 per node)")
	return func() (*model.Graph, hardware.Cluster, error) {
		var g *model.Graph
		var err error
		switch {
		case *mdl == "gpt3":
			g, err = model.GPT3(*size)
		case *mdl == "t5":
			g, err = model.T5(*size)
		case *mdl == "wresnet":
			g, err = model.WideResNet(*size)
		case *mdl == "llama":
			g, err = model.Llama(*size)
		case len(*mdl) > 5 && (*mdl)[:5] == "deep-":
			var layers int
			if _, err := fmt.Sscanf(*mdl, "deep-%d", &layers); err != nil {
				return nil, hardware.Cluster{}, fmt.Errorf("bad deep model spec %q", *mdl)
			}
			g, err = model.DeepTransformer(layers)
		default:
			return nil, hardware.Cluster{}, fmt.Errorf("unknown model %q", *mdl)
		}
		if err != nil {
			return nil, hardware.Cluster{}, err
		}
		return g, hardware.DGX1V100(4).Restrict(*gpus), nil
	}
}

func runSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	get := workload(fs)
	budget := fs.Duration("budget", 2*time.Second, "search time budget")
	maxHops := fs.Int("maxhops", 7, "multi-hop search depth limit")
	seed := fs.Int64("seed", 1, "deterministic seed")
	dbPath := fs.String("db", "", "profiling database to reuse (from `aceso profile`)")
	fs.Parse(args)

	g, cl, err := get()
	if err != nil {
		return err
	}
	fmt.Printf("searching %s: %d ops, %.2fB params, batch %d, on %d GPUs (budget %v)\n",
		g.Name, len(g.Ops), g.TotalParams()/1e9, g.GlobalBatch, cl.TotalDevices(), *budget)

	sharedPM := perfmodel.New(g, cl, *seed)
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			return err
		}
		err = sharedPM.Prof.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded profiling database %s (%d entries)\n", *dbPath, sharedPM.Prof.Entries())
	}
	res, err := core.Search(g, cl, core.Options{
		TimeBudget: *budget, MaxHops: *maxHops, Seed: *seed, CollectTrace: true,
		Model: sharedPM,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nexplored %d configurations in %v over %d iterations\n",
		res.Explored, res.Elapsed.Round(time.Millisecond), res.Iterations)
	fmt.Printf("best configuration:\n  %v\n", res.Best.Config)
	printEstimate(g, res.Best.Estimate)

	if sim, err := pipesim.Simulate(sharedPM, res.Best.Config, *seed); err == nil {
		fmt.Printf("simulated execution: %.3f s/iter, peak memory %.2f GiB, OOM=%v\n",
			sim.IterTime, sim.PeakMem/(1<<30), sim.OOM)
	}
	fmt.Println("\ntop candidates:")
	for i, c := range res.TopK {
		fmt.Printf("  #%d est %.3f s/iter, %d stages, mbs %d\n",
			i+1, c.Score, c.Config.NumStages(), c.Config.MicroBatch)
	}
	return nil
}

func printEstimate(g *model.Graph, est *perfmodel.Estimate) {
	fmt.Printf("performance model: %.3f s/iter (%.1f samples/s), peak memory %.2f GiB, feasible=%v\n",
		est.IterTime, est.Throughput(g.GlobalBatch), est.PeakMem/(1<<30), est.Feasible)
}

func runEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	get := workload(fs)
	pp := fs.Int("pp", 1, "pipeline stages")
	tp := fs.Int("tp", 1, "tensor-parallel degree")
	dp := fs.Int("dp", 1, "data-parallel degree")
	mbs := fs.Int("mbs", 1, "microbatch size")
	rc := fs.Bool("recompute", false, "recompute all operators")
	seed := fs.Int64("seed", 1, "deterministic seed")
	fs.Parse(args)

	g, cl, err := get()
	if err != nil {
		return err
	}
	if *tp**dp**pp != cl.TotalDevices() {
		return fmt.Errorf("tp(%d)·dp(%d)·pp(%d) must equal %d GPUs", *tp, *dp, *pp, cl.TotalDevices())
	}
	cfg, err := config.Balanced(g, cl.TotalDevices(), *pp, *mbs)
	if err != nil {
		return err
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: *tp, DP: *dp, Recompute: *rc}
		}
	}
	if err := cfg.Validate(g, cl.TotalDevices()); err != nil {
		return err
	}
	pm := perfmodel.New(g, cl, *seed)
	printEstimate(g, pm.Estimate(cfg))
	if sim, err := pipesim.Simulate(pm, cfg, *seed); err == nil {
		fmt.Printf("simulated execution: %.3f s/iter, peak memory %.2f GiB, OOM=%v\n",
			sim.IterTime, sim.PeakMem/(1<<30), sim.OOM)
	}
	return nil
}

func runBaseline(args []string) error {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	get := workload(fs)
	seed := fs.Int64("seed", 1, "deterministic seed")
	fs.Parse(args)

	g, cl, err := get()
	if err != nil {
		return err
	}
	if mg, err := megatron.Search(g, cl, megatron.Options{Seed: *seed}); err != nil {
		fmt.Printf("Megatron-LM grid: failed: %v\n", err)
	} else {
		fmt.Printf("Megatron-LM grid: %d points, best %.3f s/iter\n  %v\n",
			mg.Evaluated, mg.Estimate.IterTime, mg.Best)
	}
	if al, err := alpa.Search(g, cl, alpa.Options{Seed: *seed}); err != nil {
		fmt.Printf("Alpa-like solver: failed: %v\n", err)
	} else {
		fmt.Printf("Alpa-like solver: %d kernels, emulated cost %v, best %.3f s/iter\n  %v\n",
			al.Kernels, al.EmulatedSearchCost.Round(time.Millisecond), al.Estimate.IterTime, al.Best)
	}
	return nil
}

// runProfile pre-warms a profiling database for a workload and saves
// it (§3.3: "the profiled database can be reused by the search for
// models that contain the same operators"). Profiling runs one
// goroutine per operator — the parallelization the paper left as
// future work.
func runProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	get := workload(fs)
	out := fs.String("o", "profile-db.json", "output database path")
	seed := fs.Int64("seed", 1, "deterministic seed")
	fs.Parse(args)

	g, cl, err := get()
	if err != nil {
		return err
	}
	p := profiler.New(cl, *seed)
	start := time.Now()
	tps := []int{1}
	for tp := 2; tp <= cl.DevicesPerNode; tp *= 2 {
		tps = append(tps, tp)
	}
	samples := []int{1, 2, 4, 8, 16, 32}
	p.Prewarm(g, tps, samples)
	fmt.Printf("profiled %d operator entries in %v\n", p.Entries(), time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	fmt.Printf("database written to %s\n", *out)
	return nil
}
