// Command aceso searches, estimates and simulates parallel-training
// configurations from the terminal.
//
// Usage:
//
//	aceso search   -model gpt3 -size 1.3B -gpus 4 [-budget 2s] [-maxhops 7] [-seed 1]
//	aceso estimate -model gpt3 -size 1.3B -gpus 4 -pp 2 -tp 2 -dp 1 -mbs 1 [-recompute]
//	aceso baseline -model gpt3 -size 1.3B -gpus 4            # Megatron grid + Alpa-like
//	aceso elastic  -layers 6 -dim 16 -batch 32 -iters 8 -fault-rank 2 -fault-iter 4
//
// search prints the best found configuration, its performance-model
// estimate, and the runtime simulator's verdict. estimate evaluates a
// manual (Megatron-style global) configuration. baseline runs the two
// comparison systems on the same workload. elastic trains a small MLP
// for real, kills a device mid-run, and narrates the recovery
// (checkpoint → replan → reshard → resume) against an uninterrupted
// reference run.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"aceso/internal/baselines/alpa"
	"aceso/internal/baselines/megatron"
	"aceso/internal/chaos"
	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/elastic"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
	"aceso/internal/pipesim"
	"aceso/internal/profiler"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "search":
		err = runSearch(os.Args[2:])
	case "estimate":
		err = runEstimate(os.Args[2:])
	case "baseline":
		err = runBaseline(os.Args[2:])
	case "profile":
		err = runProfile(os.Args[2:])
	case "elastic":
		err = runElastic(os.Args[2:])
	case "churn":
		err = runChurn(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aceso:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: aceso <search|estimate|baseline|profile|elastic|churn> [flags]
  aceso search   -model gpt3 -size 1.3B -gpus 4 [-budget 2s] [-maxhops 7] [-seed 1] [-db db.json]
  aceso estimate -model gpt3 -size 1.3B -gpus 4 -pp 2 -tp 2 -dp 1 -mbs 1 [-recompute]
  aceso baseline -model gpt3 -size 1.3B -gpus 4
  aceso profile  -model gpt3 -size 1.3B -gpus 4 -o profile-db.json
  aceso elastic  -layers 6 -dim 16 -batch 32 -iters 8 -fault-rank 2 -fault-iter 4
  aceso churn    -layers 6 -dim 16 -batch 32 -iters 12 [-events 8] [-seed 1]
models: gpt3 (350M 1.3B 2.6B 6.7B 13B), t5 (770M 3B 6B 11B 22B),
        wresnet (0.5B 2B 4B 6.8B 13B), llama (8B 70B),
        deep-<layers> (e.g. deep-1024)`)
}

// workload parses the shared -model/-size/-gpus flags.
func workload(fs *flag.FlagSet) (get func() (*model.Graph, hardware.Cluster, error)) {
	mdl := fs.String("model", "gpt3", "model family: gpt3, t5, wresnet, deep-<layers>")
	size := fs.String("size", "1.3B", "model size label (Table 2)")
	gpus := fs.Int("gpus", 4, "number of GPUs (V100-32GB, 8 per node)")
	return func() (*model.Graph, hardware.Cluster, error) {
		var g *model.Graph
		var err error
		switch {
		case *mdl == "gpt3":
			g, err = model.GPT3(*size)
		case *mdl == "t5":
			g, err = model.T5(*size)
		case *mdl == "wresnet":
			g, err = model.WideResNet(*size)
		case *mdl == "llama":
			g, err = model.Llama(*size)
		case len(*mdl) > 5 && (*mdl)[:5] == "deep-":
			var layers int
			if _, err := fmt.Sscanf(*mdl, "deep-%d", &layers); err != nil {
				return nil, hardware.Cluster{}, fmt.Errorf("bad deep model spec %q", *mdl)
			}
			g, err = model.DeepTransformer(layers)
		default:
			return nil, hardware.Cluster{}, fmt.Errorf("unknown model %q", *mdl)
		}
		if err != nil {
			return nil, hardware.Cluster{}, err
		}
		return g, hardware.DGX1V100(4).Restrict(*gpus), nil
	}
}

func runSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	get := workload(fs)
	budget := fs.Duration("budget", 2*time.Second, "search time budget")
	maxHops := fs.Int("maxhops", 7, "multi-hop search depth limit")
	seed := fs.Int64("seed", 1, "deterministic seed")
	dbPath := fs.String("db", "", "profiling database to reuse (from `aceso profile`)")
	fs.Parse(args)

	g, cl, err := get()
	if err != nil {
		return err
	}
	fmt.Printf("searching %s: %d ops, %.2fB params, batch %d, on %d GPUs (budget %v)\n",
		g.Name, len(g.Ops), g.TotalParams()/1e9, g.GlobalBatch, cl.TotalDevices(), *budget)

	sharedPM := perfmodel.New(g, cl, *seed)
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			return err
		}
		err = sharedPM.Prof.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded profiling database %s (%d entries)\n", *dbPath, sharedPM.Prof.Entries())
	}
	res, err := core.Search(g, cl, core.Options{
		TimeBudget: *budget, MaxHops: *maxHops, Seed: *seed, CollectTrace: true,
		Model: sharedPM,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nexplored %d configurations in %v over %d iterations\n",
		res.Explored, res.Elapsed.Round(time.Millisecond), res.Iterations)
	fmt.Printf("best configuration:\n  %v\n", res.Best.Config)
	printEstimate(g, res.Best.Estimate)

	if sim, err := pipesim.Simulate(sharedPM, res.Best.Config, *seed); err == nil {
		fmt.Printf("simulated execution: %.3f s/iter, peak memory %.2f GiB, OOM=%v\n",
			sim.IterTime, sim.PeakMem/(1<<30), sim.OOM)
	}
	fmt.Println("\ntop candidates:")
	for i, c := range res.TopK {
		fmt.Printf("  #%d est %.3f s/iter, %d stages, mbs %d\n",
			i+1, c.Score, c.Config.NumStages(), c.Config.MicroBatch)
	}
	return nil
}

func printEstimate(g *model.Graph, est *perfmodel.Estimate) {
	fmt.Printf("performance model: %.3f s/iter (%.1f samples/s), peak memory %.2f GiB, feasible=%v\n",
		est.IterTime, est.Throughput(g.GlobalBatch), est.PeakMem/(1<<30), est.Feasible)
}

func runEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	get := workload(fs)
	pp := fs.Int("pp", 1, "pipeline stages")
	tp := fs.Int("tp", 1, "tensor-parallel degree")
	dp := fs.Int("dp", 1, "data-parallel degree")
	mbs := fs.Int("mbs", 1, "microbatch size")
	rc := fs.Bool("recompute", false, "recompute all operators")
	seed := fs.Int64("seed", 1, "deterministic seed")
	fs.Parse(args)

	g, cl, err := get()
	if err != nil {
		return err
	}
	if *tp**dp**pp != cl.TotalDevices() {
		return fmt.Errorf("tp(%d)·dp(%d)·pp(%d) must equal %d GPUs", *tp, *dp, *pp, cl.TotalDevices())
	}
	cfg, err := config.Balanced(g, cl.TotalDevices(), *pp, *mbs)
	if err != nil {
		return err
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: *tp, DP: *dp, Recompute: *rc}
		}
	}
	if err := cfg.Validate(g, cl.TotalDevices()); err != nil {
		return err
	}
	pm := perfmodel.New(g, cl, *seed)
	printEstimate(g, pm.Estimate(cfg))
	if sim, err := pipesim.Simulate(pm, cfg, *seed); err == nil {
		fmt.Printf("simulated execution: %.3f s/iter, peak memory %.2f GiB, OOM=%v\n",
			sim.IterTime, sim.PeakMem/(1<<30), sim.OOM)
	}
	return nil
}

func runBaseline(args []string) error {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	get := workload(fs)
	seed := fs.Int64("seed", 1, "deterministic seed")
	fs.Parse(args)

	g, cl, err := get()
	if err != nil {
		return err
	}
	if mg, err := megatron.Search(g, cl, megatron.Options{Seed: *seed}); err != nil {
		fmt.Printf("Megatron-LM grid: failed: %v\n", err)
	} else {
		fmt.Printf("Megatron-LM grid: %d points, best %.3f s/iter\n  %v\n",
			mg.Evaluated, mg.Estimate.IterTime, mg.Best)
	}
	if al, err := alpa.Search(g, cl, alpa.Options{Seed: *seed}); err != nil {
		fmt.Printf("Alpa-like solver: failed: %v\n", err)
	} else {
		fmt.Printf("Alpa-like solver: %d kernels, emulated cost %v, best %.3f s/iter\n  %v\n",
			al.Kernels, al.EmulatedSearchCost.Round(time.Millisecond), al.Estimate.IterTime, al.Best)
	}
	return nil
}

// runElastic is the elastic-runtime demo: really train a small MLP on
// an emulated cluster, kill a device mid-run, and show the recovery —
// replanned config, reshard traffic, recovery latency — next to an
// uninterrupted reference trajectory.
func runElastic(args []string) error {
	fs := flag.NewFlagSet("elastic", flag.ExitOnError)
	layers := fs.Int("layers", 6, "MLP layers")
	dim := fs.Int("dim", 16, "MLP hidden width")
	batch := fs.Int("batch", 32, "global batch rows")
	iters := fs.Int("iters", 8, "training iterations")
	faultRank := fs.Int("fault-rank", 2, "device rank to kill (-1 disables the fault)")
	faultIter := fs.Int("fault-iter", 4, "iteration at which the device dies")
	ckptEvery := fs.Int("ckpt-every", 2, "checkpoint cadence in iterations")
	seed := fs.Int64("seed", 1, "deterministic seed")
	fs.Parse(args)

	g, err := model.MLP(*layers, *dim, *batch)
	if err != nil {
		return err
	}
	cfg, err := config.Balanced(g, 4, 2, *batch/4)
	if err != nil {
		return err
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: 2, DP: 1}
		}
	}
	cl := hardware.DGX1V100(1).Restrict(4)
	if err := cfg.Validate(g, cl.TotalDevices()); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	x, y := tensor.New(*batch, *dim), tensor.New(*batch, *dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}
	fmt.Printf("elastic: MLP(%d layers, dim %d, batch %d), pp2×tp2 on %d emulated V100s\n",
		*layers, *dim, *batch, cl.TotalDevices())

	ref := runtime.InitParams(g, *seed)
	ref.Opt = runtime.Adam
	refLosses, err := runtime.Parallel(g, cfg, ref, x, y, 0.05, *iters)
	if err != nil {
		return err
	}

	var fault *runtime.FaultPlan
	if *faultRank >= 0 {
		fault = &runtime.FaultPlan{Rank: *faultRank, Iteration: *faultIter}
		fmt.Printf("elastic: device %d will die at the top of iteration %d\n", *faultRank, *faultIter)
	}
	p := runtime.InitParams(g, *seed)
	p.Opt = runtime.Adam
	rep, err := elastic.Train(context.Background(), g, cl, cfg, p, x, y, *iters, fault,
		elastic.Options{LR: 0.05, CheckpointEvery: *ckptEvery, Seed: *seed,
			SearchBudget: 300 * time.Millisecond})
	if err != nil {
		return err
	}

	fmt.Printf("\n%-5s %-14s %-14s\n", "iter", "uninterrupted", "elastic")
	for i := range rep.Losses {
		fmt.Printf("%-5d %-14.9f %-14.9f\n", i, refLosses[i], rep.Losses[i])
	}
	if rep.FaultsInjected > 0 {
		fmt.Printf("\nrecovered in %v: replanned %d→%d devices (%d stages, mbs %d), reshard moved %d bytes, %d checkpoints\n",
			rep.Recovery.Round(time.Microsecond), cl.TotalDevices(), rep.Config.TotalDevices(),
			rep.Config.NumStages(), rep.Config.MicroBatch, rep.ReshardBytesMoved, rep.Checkpoints)
	} else {
		fmt.Printf("\nno fault injected: %d checkpoints, final step %d\n", rep.Checkpoints, rep.FinalStep)
	}
	fmt.Printf("final state: step %d, max parameter divergence from uninterrupted run %.3g\n",
		rep.FinalStep, ref.MaxDiff(rep.Params))
	return nil
}

// runChurn is the continuous-churn demo: train a small MLP under a
// randomly drawn stream of preemptions, re-additions and derates, and
// narrate every supervisor decision — deferred and forced replans,
// ladder rungs, backoff retries, pauses — as a live timeline, ending
// with the availability ledger and the divergence from an
// uninterrupted reference run.
func runChurn(args []string) error {
	fs := flag.NewFlagSet("churn", flag.ExitOnError)
	layers := fs.Int("layers", 6, "MLP layers")
	dim := fs.Int("dim", 16, "MLP hidden width")
	batch := fs.Int("batch", 32, "global batch rows")
	iters := fs.Int("iters", 12, "training iterations")
	events := fs.Int("events", 8, "maximum churn events to draw")
	ckptEvery := fs.Int("ckpt-every", 2, "initial checkpoint cadence in iterations")
	seed := fs.Int64("seed", 1, "deterministic seed")
	fs.Parse(args)

	g, err := model.MLP(*layers, *dim, *batch)
	if err != nil {
		return err
	}
	cfg, err := config.Balanced(g, 4, 2, *batch/4)
	if err != nil {
		return err
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: 2, DP: 1}
		}
	}
	cl := hardware.DGX1V100(1).Restrict(4)
	if err := cfg.Validate(g, cl.TotalDevices()); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	x, y := tensor.New(*batch, *dim), tensor.New(*batch, *dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}
	spec := chaos.RandomChurnSpec(rng, cl.TotalDevices(), *iters, *events)
	for tries := 0; *events > 0 && len(spec.Events) == 0 && tries < 16; tries++ {
		// The generator draws 0..events; an empty schedule makes a dull
		// demo, so keep drawing from the same deterministic stream.
		spec = chaos.RandomChurnSpec(rng, cl.TotalDevices(), *iters, *events)
	}
	fmt.Printf("churn: MLP(%d layers, dim %d, batch %d), pp2×tp2 on %d emulated V100s, %d scheduled events:\n",
		*layers, *dim, *batch, cl.TotalDevices(), len(spec.Events))
	for _, ev := range spec.Events {
		switch ev.Kind {
		case elastic.Preempt, elastic.Readd:
			fmt.Printf("  iter %-3d %s device %d\n", ev.Iteration, ev.Kind, ev.Device)
		case elastic.SlowNode:
			fmt.Printf("  iter %-3d %s device %d scale %.2f\n", ev.Iteration, ev.Kind, ev.Device, ev.Scale)
		default:
			fmt.Printf("  iter %-3d %s scale %.2f\n", ev.Iteration, ev.Kind, ev.Scale)
		}
	}

	ref := runtime.InitParams(g, *seed)
	ref.Opt = runtime.Adam
	refLosses, err := runtime.Parallel(g, cfg, ref, x, y, 0.05, *iters)
	if err != nil {
		return err
	}

	p := runtime.InitParams(g, *seed)
	p.Opt = runtime.Adam
	fmt.Println("\ntimeline:")
	rep, err := elastic.Supervise(context.Background(), g, cl, cfg, p, x, y, *iters, spec,
		elastic.SuperviseOptions{
			Options: elastic.Options{
				LR: 0.05, CheckpointEvery: *ckptEvery, Seed: *seed,
				SearchBudget: 300 * time.Millisecond,
			},
			OnTransition: func(tr elastic.Transition) {
				fmt.Printf("  step %-3d [%s] %s\n", tr.Step, tr.Kind, tr.Detail)
			},
		})
	if err != nil {
		return err
	}

	fmt.Printf("\n%-5s %-14s %-14s\n", "iter", "uninterrupted", "churn")
	for i := range rep.Losses {
		fmt.Printf("%-5d %-14.9f %-14.9f\n", i, refLosses[i], rep.Losses[i])
	}
	fmt.Printf("\nsurvived %d events (%d in-plan faults): availability %.1f%%, %d steps lost, %d replans (%d avoided by hysteresis), %d retries, %d pauses, cadence %d→%d\n",
		rep.EventsApplied, rep.FaultsDetected, 100*rep.Availability(), rep.StepsLost,
		rep.Replans, rep.ReplansAvoided, rep.Retries, rep.Pauses, *ckptEvery, rep.FinalCadence)
	if n := len(rep.Recoveries); n > 0 {
		fmt.Printf("recovery p50 %v, p99 %v over %d recoveries; %d bytes resharded\n",
			rep.RecoveryPercentile(0.5).Round(time.Microsecond),
			rep.RecoveryPercentile(0.99).Round(time.Microsecond), n, rep.ReshardBytesMoved)
	}
	fmt.Printf("final state: step %d on %d devices, max parameter divergence from uninterrupted run %.3g\n",
		rep.FinalStep, rep.Config.TotalDevices(), ref.MaxDiff(rep.Params))
	return nil
}

// runProfile pre-warms a profiling database for a workload and saves
// it (§3.3: "the profiled database can be reused by the search for
// models that contain the same operators"). Profiling runs one
// goroutine per operator — the parallelization the paper left as
// future work.
func runProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	get := workload(fs)
	out := fs.String("o", "profile-db.json", "output database path")
	seed := fs.Int64("seed", 1, "deterministic seed")
	fs.Parse(args)

	g, cl, err := get()
	if err != nil {
		return err
	}
	p := profiler.New(cl, *seed)
	start := time.Now()
	tps := []int{1}
	for tp := 2; tp <= cl.DevicesPerNode; tp *= 2 {
		tps = append(tps, tp)
	}
	samples := []int{1, 2, 4, 8, 16, 32}
	p.Prewarm(g, tps, samples)
	fmt.Printf("profiled %d operator entries in %v\n", p.Entries(), time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	fmt.Printf("database written to %s\n", *out)
	return nil
}
