package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "aceso-cli")
	if err != nil {
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "aceso")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(binPath, args...).CombinedOutput()
	return string(out), err
}

func TestCLISearch(t *testing.T) {
	out, err := run(t, "search", "-model", "gpt3", "-size", "350M", "-gpus", "4", "-budget", "300ms")
	if err != nil {
		t.Fatalf("search failed: %v\n%s", err, out)
	}
	for _, want := range []string{"best configuration", "performance model", "simulated execution", "top candidates"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIEstimate(t *testing.T) {
	out, err := run(t, "estimate", "-model", "gpt3", "-size", "350M", "-gpus", "4",
		"-pp", "2", "-tp", "2", "-dp", "1", "-mbs", "2")
	if err != nil {
		t.Fatalf("estimate failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "feasible=true") {
		t.Errorf("estimate output:\n%s", out)
	}
	// Mismatched parallelism product must be rejected.
	out, err = run(t, "estimate", "-model", "gpt3", "-size", "350M", "-gpus", "4", "-pp", "1", "-tp", "1", "-dp", "1")
	if err == nil {
		t.Errorf("tp·dp·pp != gpus accepted:\n%s", out)
	}
}

func TestCLIBaseline(t *testing.T) {
	out, err := run(t, "baseline", "-model", "gpt3", "-size", "350M", "-gpus", "4")
	if err != nil {
		t.Fatalf("baseline failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "Megatron-LM grid") || !strings.Contains(out, "Alpa-like solver") {
		t.Errorf("baseline output:\n%s", out)
	}
}

func TestCLIProfileAndReuse(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.json")
	out, err := run(t, "profile", "-model", "gpt3", "-size", "350M", "-gpus", "4", "-o", db)
	if err != nil {
		t.Fatalf("profile failed: %v\n%s", err, out)
	}
	if _, err := os.Stat(db); err != nil {
		t.Fatalf("database not written: %v", err)
	}
	out, err = run(t, "search", "-model", "gpt3", "-size", "350M", "-gpus", "4",
		"-budget", "200ms", "-db", db)
	if err != nil {
		t.Fatalf("search -db failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "loaded profiling database") {
		t.Errorf("database not loaded:\n%s", out)
	}
}

func TestCLIDeepModelAndErrors(t *testing.T) {
	out, err := run(t, "search", "-model", "deep-16", "-gpus", "4", "-budget", "200ms")
	if err != nil {
		t.Fatalf("deep model search failed: %v\n%s", err, out)
	}
	if out, err := run(t, "search", "-model", "nonsense"); err == nil {
		t.Errorf("unknown model accepted:\n%s", out)
	}
	if out, err := run(t, "frobnicate"); err == nil {
		t.Errorf("unknown subcommand accepted:\n%s", out)
	}
	if out, err := run(t); err == nil {
		t.Errorf("missing subcommand accepted:\n%s", out)
	}
}
