// Command acesod is the Aceso planning daemon: a long-running HTTP
// service that turns the batch configuration search into an on-demand
// planner. POST /v1/plan runs a deadline-bounded search (or replays a
// cached plan); GET /metrics exposes the obs registry in Prometheus
// text format; SIGTERM drains gracefully — stop admitting, finish
// in-flight requests, flush metrics. See DESIGN.md §5i.
//
// Usage:
//
//	acesod -addr :7433 -concurrency 8 -queue 64 -cache 256
//	acesod -smoke    # self-test: start, plan, cache-hit, scrape, drain
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aceso/internal/obs"
	"aceso/internal/planserver"
)

func main() {
	var (
		addr          = flag.String("addr", ":7433", "listen address")
		concurrency   = flag.Int("concurrency", 0, "max concurrent searches (0 = GOMAXPROCS)")
		queue         = flag.Int("queue", 64, "max queued requests before shedding 429s")
		cacheSize     = flag.Int("cache", 256, "plan cache capacity (entries)")
		defaultBudget = flag.Duration("default-budget", 2*time.Second, "search budget when a request omits budget_ms")
		maxBudget     = flag.Duration("max-budget", 30*time.Second, "upper clamp on requested budgets")
		traceCap      = flag.Int("trace-cap", 4096, "rolling iteration-trace window served at /v1/trace")
		smoke         = flag.Bool("smoke", false, "self-test: plan, cache-hit, scrape /metrics, drain, exit")
	)
	flag.Parse()

	srv := planserver.New(planserver.Config{
		Concurrency:   *concurrency,
		Queue:         *queue,
		CacheSize:     *cacheSize,
		DefaultBudget: *defaultBudget,
		MaxBudget:     *maxBudget,
		TraceCap:      *traceCap,
	})

	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0" // never collide with a real daemon
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		log.Fatalf("acesod: listen %s: %v", listenAddr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(ln) }()

	// SIGTERM/SIGINT → graceful drain: stop admitting, finish
	// in-flight, then close the listener and flush metrics.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		sig := <-sigc
		log.Printf("acesod: %v received, draining", sig)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(drained)
	}()

	log.Printf("acesod: serving on %s (concurrency=%d queue=%d cache=%d)", ln.Addr(), *concurrency, *queue, *cacheSize)

	if *smoke {
		if err := runSmoke(fmt.Sprintf("http://%s", ln.Addr())); err != nil {
			log.Fatalf("acesod: smoke FAIL: %v", err)
		}
		// Exercise the real drain path end to end.
		sigc <- syscall.SIGTERM
	}

	err = <-serveDone
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("acesod: serve: %v", err)
	}
	<-drained
	flushMetrics(srv.Registry())
	if *smoke {
		log.Printf("acesod: smoke OK")
	}
	log.Printf("acesod: drained, bye")
}

// flushMetrics writes the final Prometheus snapshot to stderr so the
// last scrape interval is never lost on shutdown.
func flushMetrics(reg *obs.Registry) {
	fmt.Fprintln(os.Stderr, "# acesod final metrics snapshot")
	_ = reg.WritePrometheus(os.Stderr)
}

// runSmoke drives one of everything against the live daemon: a cold
// plan, an exact cache hit that must replay the identical bytes, an
// SSE stream, a /metrics scrape, and /healthz.
func runSmoke(base string) error {
	req := map[string]any{
		"model":   map[string]any{"family": "tinygpt", "layers": 2, "seq": 64, "hidden": 128, "heads": 4, "batch": 8},
		"cluster": map[string]any{"nodes": 1, "restrict": 4},
		"options": map[string]any{"budget_ms": 10000, "max_iterations": 2, "stage_counts": []int{1, 2}, "seed": 7},
	}
	post := func(body map[string]any) (planserver.PlanResponse, error) {
		var out planserver.PlanResponse
		raw, err := json.Marshal(body)
		if err != nil {
			return out, err
		}
		resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(raw))
		if err != nil {
			return out, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return out, fmt.Errorf("POST /v1/plan: status %d: %s", resp.StatusCode, b)
		}
		return out, json.NewDecoder(resp.Body).Decode(&out)
	}

	first, err := post(req)
	if err != nil {
		return err
	}
	if first.Cache != "miss" {
		return fmt.Errorf("first plan: cache=%q, want miss", first.Cache)
	}
	second, err := post(req)
	if err != nil {
		return err
	}
	if second.Cache != "hit" {
		return fmt.Errorf("second plan: cache=%q, want hit", second.Cache)
	}
	if !bytes.Equal(first.Plan, second.Plan) {
		return fmt.Errorf("cache hit returned different plan bytes")
	}

	// SSE stream.
	sreq := map[string]any{}
	for k, v := range req {
		sreq[k] = v
	}
	sreq["stream"] = true
	sreq["no_cache"] = true
	raw, _ := json.Marshal(sreq)
	resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stream), "event: result") {
		return fmt.Errorf("SSE stream missing result frame")
	}

	// Metrics scrape: correct content type, the serve families present.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mtext, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", mresp.StatusCode)
	}
	for _, want := range []string{
		"# TYPE aceso_serve_requests_total counter",
		`aceso_serve_cache_hits_total{kind="exact"} 1`,
	} {
		if !strings.Contains(string(mtext), want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /healthz: status %d", hresp.StatusCode)
	}
	return nil
}
