package main

// The serve target load-tests the planserver the way production
// traffic would hit acesod: thousands of concurrent plan requests over
// real HTTP against a mixed model zoo, plus dedicated overload, drain,
// and cache-correctness phases. It writes BENCH_serve.json and exits
// non-zero when a gate fails:
//
//   - any transport or unexpected-status error during the load phase
//   - cache hit rate of 0 on the repeated-request mix
//   - no warm near-miss hit on the degraded-cluster probe
//   - no 429 shed under deliberate overload
//   - any dropped in-flight request across a graceful drain
//   - a cached plan whose bytes differ from a fresh search of the
//     same (graph, cluster, options) key on a virgin server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"aceso/internal/obs"
	"aceso/internal/planserver"
)

// zooItem is one request template of the mixed workload.
type zooItem struct {
	name string
	req  planserver.PlanRequest
	// degraded marks the near-miss template whose plan is produced by
	// a warm-started search; it is excluded from the fresh-server
	// identity check (a virgin server has no donor to warm from).
	degraded bool
}

func serveZoo() []zooItem {
	tiny := func(seed int64) planserver.PlanRequest {
		return planserver.PlanRequest{
			Model:   planserver.ModelSpec{Family: "tinygpt", Layers: 2, Seq: 64, Hidden: 128, Heads: 4, Batch: 8},
			Cluster: planserver.ClusterSpec{Nodes: 1, Restrict: 4},
			Options: planserver.SearchOptions{BudgetMS: 10_000, MaxIterations: 2, StageCounts: []int{1, 2}, Seed: seed},
		}
	}
	degraded := tiny(7)
	degraded.Cluster.Faults = &planserver.FaultsSpec{Dead: []int{3}}
	bigger := planserver.PlanRequest{
		Model:   planserver.ModelSpec{Family: "tinygpt", Layers: 4, Seq: 128, Hidden: 256, Heads: 4, Batch: 16},
		Cluster: planserver.ClusterSpec{Nodes: 1, Restrict: 8},
		Options: planserver.SearchOptions{BudgetMS: 10_000, MaxIterations: 2, StageCounts: []int{2, 4}, Seed: 7},
	}
	mlp := planserver.PlanRequest{
		Model:   planserver.ModelSpec{Family: "mlp", Layers: 4, Dim: 256, Batch: 16},
		Cluster: planserver.ClusterSpec{Nodes: 1, Restrict: 4},
		Options: planserver.SearchOptions{BudgetMS: 10_000, MaxIterations: 2, StageCounts: []int{1, 2}, Seed: 3},
	}
	mlpnorm := mlp
	mlpnorm.Model.Family = "mlpnorm"
	uni := planserver.PlanRequest{
		Model:   planserver.ModelSpec{Family: "uniform", Ops: 16, FLOPs: 1e9, Params: 1e6, Act: 1e5, Batch: 8},
		Cluster: planserver.ClusterSpec{Nodes: 1, Restrict: 4},
		Options: planserver.SearchOptions{BudgetMS: 10_000, MaxIterations: 2, StageCounts: []int{1, 2}, Seed: 5},
	}
	uniWide := uni
	uniWide.Model.Ops = 24
	uniWide.Cluster.Restrict = 8
	uniWide.Options.StageCounts = []int{2, 4}
	return []zooItem{
		{name: "tinygpt-4dev", req: tiny(7)},
		{name: "tinygpt-4dev-degraded", req: degraded, degraded: true},
		{name: "tinygpt-4dev-seed9", req: tiny(9)},
		{name: "tinygpt-8dev", req: bigger},
		{name: "mlp-4dev", req: mlp},
		{name: "mlpnorm-4dev", req: mlpnorm},
		{name: "uniform-16op", req: uni},
		{name: "uniform-24op", req: uniWide},
	}
}

// planPost sends one plan request and decodes the envelope.
func planPost(client *http.Client, base string, pr planserver.PlanRequest) (int, planserver.PlanResponse, error) {
	var out planserver.PlanResponse
	raw, err := json.Marshal(pr)
	if err != nil {
		return 0, out, err
	}
	resp, err := client.Post(base+"/v1/plan", "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, out, err
		}
		return resp.StatusCode, out, nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, out, nil
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

type serveBenchFile struct {
	Benchmark string `json:"benchmark"`
	Setting   string `json:"setting"`

	Requests    int     `json:"requests"`
	Clients     int     `json:"clients"`
	Served      int     `json:"served"`
	Errors      int     `json:"errors"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	Throughput  float64 `json:"throughput_rps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	CacheHits   int     `json:"cache_hits"`
	CacheWarm   int     `json:"cache_warm"`
	CacheMisses int     `json:"cache_misses"`
	HitRate     float64 `json:"cache_hit_rate"`

	WarmObserved bool `json:"warm_observed"`

	Overload struct {
		Requests int `json:"requests"`
		Served   int `json:"served"`
		Shed     int `json:"shed"`
		Errors   int `json:"errors"`
	} `json:"overload"`

	Drain struct {
		Requests         int `json:"requests"`
		Completed        int `json:"completed"`
		RejectedDraining int `json:"rejected_draining"`
		Dropped          int `json:"dropped"`
	} `json:"drain"`

	CacheIdentity struct {
		KeysChecked int  `json:"keys_checked"`
		Identical   bool `json:"identical"`
	} `json:"cache_identity"`

	Metrics *obs.Registry `json:"metrics"`
}

// runServeBench executes the four phases and writes the report.
// Returns the number of gate violations.
func runServeBench(file string, requests, clients int, w io.Writer) (int, error) {
	if requests < 1 {
		requests = 1
	}
	if clients < 1 {
		clients = 1
	}
	zoo := serveZoo()
	reg := obs.NewRegistry()
	srv := planserver.New(planserver.Config{
		Concurrency: runtime.GOMAXPROCS(0),
		Queue:       requests, // the load phase must shed nothing
		Registry:    reg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	var rep serveBenchFile
	rep.Benchmark = "planserver-load"
	rep.Setting = fmt.Sprintf("%d requests over %d-item zoo, %d client workers, concurrency %d, in-process HTTP",
		requests, len(zoo), clients, runtime.GOMAXPROCS(0))
	rep.Requests = requests
	rep.Clients = clients
	rep.Metrics = reg
	violations := 0
	gate := func(ok bool, format string, args ...any) {
		if !ok {
			violations++
			fmt.Fprintf(w, "serve: GATE FAILED: "+format+"\n", args...)
		}
	}

	// Phase 0 — sequential warm probe: seed the healthy plan, then the
	// degraded variant must warm-start from it.
	for _, it := range zoo {
		if it.degraded {
			continue
		}
		code, out, err := planPost(client, ts.URL, it.req)
		if err != nil || code != http.StatusOK {
			return violations, fmt.Errorf("seed %s: status %d err %v", it.name, code, err)
		}
		if out.Cache != "miss" {
			return violations, fmt.Errorf("seed %s: cache %q, want miss", it.name, out.Cache)
		}
	}
	for _, it := range zoo {
		if !it.degraded {
			continue
		}
		code, out, err := planPost(client, ts.URL, it.req)
		if err != nil || code != http.StatusOK {
			return violations, fmt.Errorf("warm probe %s: status %d err %v", it.name, code, err)
		}
		rep.WarmObserved = out.Cache == "warm"
		gate(rep.WarmObserved, "degraded near-miss served as %q, want warm", out.Cache)
	}

	// Phase 1 — concurrent load over the zoo. Every plan is now cached,
	// so the mix exercises the hit path under contention; a slice of
	// requests carries NoCache to keep real searches in flight too.
	fmt.Fprintf(w, "serve: load phase — %d requests, %d clients...\n", requests, clients)
	lat := make([]time.Duration, requests)
	kinds := make([]string, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	startLoad := time.Now()
	next := make(chan int)
	go func() {
		for i := 0; i < requests; i++ {
			next <- i
		}
		close(next)
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				it := zoo[i%len(zoo)]
				pr := it.req
				if i%17 == 0 && !it.degraded {
					pr.NoCache = true // keep cold searches in the mix
				}
				t0 := time.Now()
				code, out, err := planPost(client, ts.URL, pr)
				lat[i] = time.Since(t0)
				if err != nil {
					errs[i] = err
					continue
				}
				if code != http.StatusOK {
					errs[i] = fmt.Errorf("status %d", code)
					continue
				}
				kinds[i] = out.Cache
			}
		}()
	}
	wg.Wait()
	rep.ElapsedSec = time.Since(startLoad).Seconds()

	for i := 0; i < requests; i++ {
		if errs[i] != nil {
			rep.Errors++
			if rep.Errors <= 3 {
				fmt.Fprintf(w, "serve: request %d (%s): %v\n", i, zoo[i%len(zoo)].name, errs[i])
			}
			continue
		}
		rep.Served++
		switch kinds[i] {
		case "hit":
			rep.CacheHits++
		case "warm":
			rep.CacheWarm++
		default:
			rep.CacheMisses++
		}
	}
	gate(rep.Errors == 0, "%d/%d load-phase requests failed", rep.Errors, requests)
	if rep.Served > 0 {
		rep.HitRate = float64(rep.CacheHits) / float64(rep.Served)
	}
	gate(rep.HitRate > 0, "cache hit rate 0 on repeated-request mix")
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	rep.P50MS = percentile(lat, 0.50).Seconds() * 1e3
	rep.P95MS = percentile(lat, 0.95).Seconds() * 1e3
	rep.P99MS = percentile(lat, 0.99).Seconds() * 1e3
	rep.MaxMS = lat[len(lat)-1].Seconds() * 1e3
	if rep.ElapsedSec > 0 {
		rep.Throughput = float64(rep.Served) / rep.ElapsedSec
	}
	fmt.Fprintf(w, "serve: load done — %d served, %d errors, p50 %.2fms p99 %.2fms, hit rate %.1f%%, %.0f req/s\n",
		rep.Served, rep.Errors, rep.P50MS, rep.P99MS, rep.HitRate*100, rep.Throughput)

	// Phase 2 — overload: a small server must shed with 429s, not
	// queue without bound or fall over.
	overSrv := planserver.New(planserver.Config{Concurrency: 2, Queue: 2})
	overTS := httptest.NewServer(overSrv.Handler())
	defer overTS.Close()
	overReq := planserver.PlanRequest{
		Model:   planserver.ModelSpec{Family: "gpt3", Size: "350M"},
		Cluster: planserver.ClusterSpec{Nodes: 1},
		Options: planserver.SearchOptions{BudgetMS: 1000, Seed: 1},
		NoCache: true,
	}
	const overN = 24
	rep.Overload.Requests = overN
	var owg sync.WaitGroup
	ocodes := make([]int, overN)
	oerrs := make([]error, overN)
	for i := 0; i < overN; i++ {
		owg.Add(1)
		go func(i int) {
			defer owg.Done()
			code, _, err := planPost(overTS.Client(), overTS.URL, overReq)
			ocodes[i], oerrs[i] = code, err
		}(i)
		time.Sleep(10 * time.Millisecond)
	}
	owg.Wait()
	for i := 0; i < overN; i++ {
		switch {
		case oerrs[i] != nil:
			rep.Overload.Errors++
		case ocodes[i] == http.StatusOK:
			rep.Overload.Served++
		case ocodes[i] == http.StatusTooManyRequests:
			rep.Overload.Shed++
		default:
			rep.Overload.Errors++
		}
	}
	gate(rep.Overload.Shed > 0, "overload shed nothing (%d served, %d errors)", rep.Overload.Served, rep.Overload.Errors)
	gate(rep.Overload.Errors == 0, "%d overload requests errored", rep.Overload.Errors)
	fmt.Fprintf(w, "serve: overload — %d served, %d shed (429), %d errors\n",
		rep.Overload.Served, rep.Overload.Shed, rep.Overload.Errors)

	// Phase 3 — graceful drain: every in-flight request completes,
	// every late request gets a clean 503, nothing is dropped.
	drainSrv := planserver.New(planserver.Config{Concurrency: 2, Queue: 64})
	drainTS := httptest.NewServer(drainSrv.Handler())
	defer drainTS.Close()
	const drainN = 40
	rep.Drain.Requests = drainN
	dcodes := make([]int, drainN)
	derrs := make([]error, drainN)
	var dwg sync.WaitGroup
	for i := 0; i < drainN; i++ {
		pr := serveZoo()[0].req
		pr.Options.Seed = int64(1000 + i) // distinct keys: real searches
		pr.NoCache = true
		dwg.Add(1)
		go func(i int, pr planserver.PlanRequest) {
			defer dwg.Done()
			code, _, err := planPost(drainTS.Client(), drainTS.URL, pr)
			dcodes[i], derrs[i] = code, err
		}(i, pr)
	}
	time.Sleep(50 * time.Millisecond)
	drainSrv.Drain()
	dwg.Wait()
	for i := 0; i < drainN; i++ {
		switch {
		case derrs[i] != nil:
			rep.Drain.Dropped++
		case dcodes[i] == http.StatusOK:
			rep.Drain.Completed++
		case dcodes[i] == http.StatusServiceUnavailable:
			rep.Drain.RejectedDraining++
		default:
			rep.Drain.Dropped++
		}
	}
	gate(rep.Drain.Dropped == 0, "%d requests dropped across drain", rep.Drain.Dropped)
	gate(rep.Drain.Completed > 0, "drain admitted nothing; nothing was in flight")
	fmt.Fprintf(w, "serve: drain — %d completed, %d rejected (503), %d dropped\n",
		rep.Drain.Completed, rep.Drain.RejectedDraining, rep.Drain.Dropped)

	// Phase 4 — cache correctness: for every non-degraded zoo key, the
	// plan a virgin server produces from a cold search must be
	// bit-identical to the bytes the loaded server serves from cache.
	freshSrv := planserver.New(planserver.Config{})
	freshTS := httptest.NewServer(freshSrv.Handler())
	defer freshTS.Close()
	rep.CacheIdentity.Identical = true
	for _, it := range zoo {
		if it.degraded {
			continue // a virgin server has no warm donor for this key
		}
		code, cached, err := planPost(client, ts.URL, it.req)
		if err != nil || code != http.StatusOK || cached.Cache != "hit" {
			return violations, fmt.Errorf("identity %s: cached fetch status %d cache %q err %v", it.name, code, cached.Cache, err)
		}
		fcode, fresh, err := planPost(freshTS.Client(), freshTS.URL, it.req)
		if err != nil || fcode != http.StatusOK {
			return violations, fmt.Errorf("identity %s: fresh search status %d err %v", it.name, fcode, err)
		}
		rep.CacheIdentity.KeysChecked++
		if !bytes.Equal(cached.Plan, fresh.Plan) {
			rep.CacheIdentity.Identical = false
			gate(false, "cached plan for %s differs from fresh search (key %s)", it.name, cached.Key)
		}
	}
	fmt.Fprintf(w, "serve: cache identity — %d keys checked, identical=%v\n",
		rep.CacheIdentity.KeysChecked, rep.CacheIdentity.Identical)

	raw, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return violations, err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(file, raw, 0o644); err != nil {
		return violations, err
	}
	fmt.Fprintf(w, "serve: report written to %s\n", file)
	return violations, nil
}
