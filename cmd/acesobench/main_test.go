package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "acesobench-cli")
	if err != nil {
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "acesobench")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestBenchFig1(t *testing.T) {
	out, err := exec.Command(binPath, "fig1").CombinedOutput()
	if err != nil {
		t.Fatalf("fig1 failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Figure 1") {
		t.Errorf("output:\n%s", out)
	}
}

func TestBenchFig7WithCSV(t *testing.T) {
	dir := t.TempDir()
	out, err := exec.Command(binPath,
		"-budget", "200ms", "-sizes", "1", "-csv", dir, "fig7", "cases").CombinedOutput()
	if err != nil {
		t.Fatalf("fig7 failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "Figure 7") || !strings.Contains(s, "case studies") {
		t.Errorf("output:\n%s", s)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "e2e.csv"))
	if err != nil {
		t.Fatalf("e2e.csv missing: %v", err)
	}
	if !strings.Contains(string(csv), "family,size,gpus") {
		t.Errorf("csv header missing:\n%s", csv)
	}
}

func TestBenchFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10's DP comparator is deliberately expensive")
	}
	out, err := exec.Command(binPath, "-budget", "200ms", "fig10").CombinedOutput()
	if err != nil {
		t.Fatalf("fig10 failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Figure 10") {
		t.Errorf("output:\n%s", out)
	}
}
