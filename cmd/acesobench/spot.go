package main

// The "spot" target (not part of "all") is the spot-capacity case
// study: risk-aware planning against a mixed reserved/spot fleet, a
// deterministic replayed preemption trace driven twice through the
// churn supervisor — once risk-aware (notices honored, Young–Daly
// cadence), once risk-blind (same reclaim instants, no notices, sparse
// checkpoints) — and the randomized spot chaos pass. It writes
// BENCH_spot.json and exits non-zero unless the risk-aware run achieves
// at least spotSpeedupGate× the risk-blind run's *achieved* throughput
// (steps per unit of wall work, counting re-executed iterations,
// checkpoint overhead and recovery stalls — not the nominal iteration
// time).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"aceso/internal/chaos"
	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/elastic"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/perfmodel"
	art "aceso/internal/runtime"
	"aceso/internal/tensor"
)

// spotSpeedupGate is the acceptance floor on achieved-throughput
// speedup of the risk-aware replay over the risk-blind one.
const spotSpeedupGate = 1.2

// Wall-work pricing for the replay comparison, in units of one
// iteration's time. Checkpoints cost a fraction of an iteration; a
// reactive fault recovery pays detection + checkpoint restore + an
// unwarmed replan on the critical path; a notice-driven clean drain
// pays only the pre-warmed switchover (the search ran while the doomed
// device was still serving).
const (
	spotCkptCost    = 0.1
	spotFaultCost   = 2.0
	spotDrainCost   = 0.5
	spotNoticeIters = 2 // advance warning, in iterations
)

// spotReplayStats is one supervised replay's achieved-throughput ledger.
type spotReplayStats struct {
	StepsDone          int     `json:"steps_done"`
	IterationsExecuted int     `json:"iterations_executed"`
	StepsLost          int     `json:"steps_lost"`
	Checkpoints        int     `json:"checkpoints"`
	FaultsDetected     int     `json:"faults_detected"`
	Notices            int     `json:"notices"`
	CleanDrains        int     `json:"clean_drains"`
	NoticesMissed      int     `json:"notices_missed"`
	Replans            int     `json:"replans"`
	CheckpointCadence  int     `json:"checkpoint_cadence"`
	WallIters          float64 `json:"wall_iters"`
	AchievedThroughput float64 `json:"achieved_throughput"`
}

// spotBenchFile is the BENCH_spot.json schema.
type spotBenchFile struct {
	Setting string `json:"setting"`
	Seed    int64  `json:"seed"`

	// Planner slice: search on the mixed reserved/spot fleet vs the
	// same search on the hazard-stripped twin, re-priced under risk.
	AwareNominalIterTime  float64 `json:"aware_nominal_iter_time"`
	AwareExpectedIterTime float64 `json:"aware_expected_iter_time"`
	AwareExplored         int     `json:"aware_explored"`
	RecommendedCadence    int     `json:"recommended_cadence"`
	BlindNominalIterTime  float64 `json:"blind_nominal_iter_time"`
	BlindExpectedIterTime float64 `json:"blind_expected_iter_time"`
	BlindExplored         int     `json:"blind_explored"`
	ExpectedSpeedup       float64 `json:"expected_speedup"`

	// Replay slice: one preemption trace, two supervisors.
	ReplayIterations int             `json:"replay_iterations"`
	ReplayReclaims   int             `json:"replay_reclaims"`
	Aware            spotReplayStats `json:"aware"`
	Blind            spotReplayStats `json:"blind"`
	AchievedSpeedup  float64         `json:"achieved_speedup"`
	SpeedupGate      float64         `json:"speedup_gate"`

	ChaosTrials       int      `json:"chaos_trials"`
	ChaosSurvivedRuns int      `json:"chaos_survived_runs"`
	ChaosTypedErrs    int      `json:"chaos_typed_errors"`
	ChaosViolations   []string `json:"chaos_violations,omitempty"`

	Metrics *obs.Registry `json:"metrics"`
}

// spotReclaim is one scripted spot reclaim: the device is taken at
// iteration At and (optionally) handed back at ReaddAt.
type spotReclaim struct {
	At      int
	Device  int
	ReaddAt int // 0: never returns
}

// spotTrace is the deterministic replay schedule: reclaims placed
// mid-segment relative to the risk-blind checkpoint cadence, so the
// blind run pays real rollback work while the aware run's notices
// cover every reclaim.
var spotTrace = []spotReclaim{
	{At: 7, Device: 6, ReaddAt: 10},
	{At: 13, Device: 7, ReaddAt: 16},
	{At: 19, Device: 2, ReaddAt: 22},
	{At: 25, Device: 5, ReaddAt: 28},
	{At: 30, Device: 1},
}

// spotEvents renders the trace as a churn schedule. Aware runs get the
// advance notice spotNoticeIters before each reclaim; blind runs get
// the bare preempt at the same reclaim instant.
func spotEvents(aware bool) elastic.ChurnSpec {
	var spec elastic.ChurnSpec
	for _, r := range spotTrace {
		if aware {
			spec.Events = append(spec.Events, elastic.ChurnEvent{
				Iteration: r.At - spotNoticeIters,
				Kind:      elastic.PreemptNotice,
				Device:    r.Device,
				Notice:    spotNoticeIters,
			})
		} else {
			spec.Events = append(spec.Events, elastic.ChurnEvent{
				Iteration: r.At,
				Kind:      elastic.Preempt,
				Device:    r.Device,
			})
		}
		if r.ReaddAt > 0 {
			spec.Events = append(spec.Events, elastic.ChurnEvent{
				Iteration: r.ReaddAt,
				Kind:      elastic.Readd,
				Device:    r.Device,
			})
		}
	}
	return spec
}

// spotStats prices one supervised run's achieved throughput.
func spotStats(rep *elastic.ChurnReport, cadence, iters int) spotReplayStats {
	wall := float64(rep.IterationsExecuted) +
		spotCkptCost*float64(rep.Checkpoints) +
		spotFaultCost*float64(rep.FaultsDetected) +
		spotDrainCost*float64(rep.CleanDrains)
	return spotReplayStats{
		StepsDone:          rep.FinalStep,
		IterationsExecuted: rep.IterationsExecuted,
		StepsLost:          rep.StepsLost,
		Checkpoints:        rep.Checkpoints,
		FaultsDetected:     rep.FaultsDetected,
		Notices:            rep.Notices,
		CleanDrains:        rep.CleanDrains,
		NoticesMissed:      rep.NoticesMissed,
		Replans:            rep.Replans,
		CheckpointCadence:  cadence,
		WallIters:          wall,
		AchievedThroughput: float64(iters) / wall,
	}
}

// runSpotBench runs the spot case study and returns the number of gate
// violations.
func runSpotBench(outFile string, trials int, seed int64, w io.Writer) (int, error) {
	// --- Planner slice -------------------------------------------------
	// GPT-3 350M on 8 reserved + 8 spot V100s, spot reclaimed 6×/hour.
	gSearch, err := model.GPT3("350M")
	if err != nil {
		return 0, err
	}
	spotCl := hardware.ReservedSpotV100(8, 1, 1, 6, 120)
	opts := core.Options{
		TimeBudget:    time.Hour, // iterations are the binding limit
		MaxIterations: 4,
		StageCounts:   []int{2, 4},
		Seed:          seed,
	}
	aware, err := core.Search(gSearch, spotCl, opts)
	if err != nil {
		return 0, err
	}
	if !aware.Best.Estimate.Feasible {
		return 0, fmt.Errorf("risk-aware search found no feasible plan")
	}
	awareExpected, _ := core.RiskAssess(&spotCl, aware.Best.Config, aware.Best.Estimate.IterTime, opts)

	// Risk-blind: identical fleet with the hazard stripped, then every
	// candidate re-priced under the true hazard.
	blindCl := spotCl.StripHazard()
	blindRes, err := core.Search(gSearch, blindCl, opts)
	if err != nil {
		return 0, err
	}
	blindNominal, blindExpected := 0.0, 0.0
	for _, cand := range append([]core.Candidate{blindRes.Best}, blindRes.TopK...) {
		if cand.Config == nil || cand.Estimate == nil || !cand.Estimate.Feasible {
			continue
		}
		exp, _ := core.RiskAssess(&spotCl, cand.Config, cand.Estimate.IterTime, opts)
		if blindExpected == 0 || exp < blindExpected {
			blindNominal, blindExpected = cand.Estimate.IterTime, exp
		}
	}
	if blindExpected == 0 {
		return 0, fmt.Errorf("no risk-blind plan is feasible; the comparison is vacuous")
	}

	violations := 0
	if aware.RecommendedCadence <= 0 {
		violations++
		fmt.Fprintf(w, "spot: no recommended cadence on a hazardous fleet\n")
	}
	if awareExpected > blindExpected*(1+1e-9) {
		violations++
		fmt.Fprintf(w, "spot: risk-aware expected %.6fs worse than re-priced risk-blind %.6fs\n",
			awareExpected, blindExpected)
	}
	fmt.Fprintf(w, "spot: planner: aware %.4fs nominal / %.4fs expected (cadence %d, explored %d); blind %.4fs nominal / %.4fs expected (explored %d)\n",
		aware.Best.Estimate.IterTime, awareExpected, aware.RecommendedCadence, aware.Explored,
		blindNominal, blindExpected, blindRes.Explored)

	// --- Replay slice --------------------------------------------------
	// Same MLP fleet as the churn bench: 8 emulated V100s, 2 nodes.
	const (
		layers, dim, batch = 6, 16, 32
		iters              = 32
		lr                 = 0.05
		blindCadence       = 8
	)
	g, err := model.MLP(layers, dim, batch)
	if err != nil {
		return violations, err
	}
	cfg, err := config.Balanced(g, 8, 2, 8)
	if err != nil {
		return violations, err
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: 2, DP: 2}
		}
	}
	cl := hardware.DGX1V100(2)
	cl.DevicesPerNode = 4
	if err := cl.Validate(); err != nil {
		return violations, err
	}
	if err := cfg.Validate(g, cl.TotalDevices()); err != nil {
		return violations, err
	}
	rng := rand.New(rand.NewSource(seed))
	x, y := tensor.New(batch, dim), tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}

	// The aware cadence is the Young–Daly recommendation for the
	// trace's empirical hazard, in iteration units (iterTime = 1).
	lamPerIter := float64(len(spotTrace)) / iters
	awareCadence := perfmodel.RecommendedCadence(lamPerIter, 1, spotCkptCost, blindCadence)

	reg := obs.NewRegistry()
	run := func(aware bool) (*elastic.ChurnReport, error) {
		dir, err := os.MkdirTemp("", "aceso-spot-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		p := art.InitParams(g, seed)
		p.Opt = art.Adam
		sopt := elastic.SuperviseOptions{
			Options: elastic.Options{
				LR:              lr,
				CheckpointEvery: blindCadence,
				Dir:             dir,
				SearchBudget:    300 * time.Millisecond,
				Seed:            seed,
			},
			BackoffBase: 100 * time.Microsecond,
			BackoffCap:  2 * time.Millisecond,
			MaxCadence:  blindCadence,
		}
		if aware {
			sopt.CheckpointEvery = awareCadence
			sopt.CheckpointCost = 1
			sopt.Metrics = reg
		}
		return elastic.Supervise(context.Background(), g, cl, cfg, p, x, y, iters,
			spotEvents(aware), sopt)
	}

	awareRep, err := run(true)
	if err != nil {
		return violations, fmt.Errorf("aware replay: %w", err)
	}
	blindRep, err := run(false)
	if err != nil {
		return violations, fmt.Errorf("blind replay: %w", err)
	}

	awareStats := spotStats(awareRep, awareCadence, iters)
	blindStats := spotStats(blindRep, blindCadence, iters)
	speedup := awareStats.AchievedThroughput / blindStats.AchievedThroughput

	if awareRep.FinalStep != iters || blindRep.FinalStep != iters {
		violations++
		fmt.Fprintf(w, "spot: replay incomplete: aware %d, blind %d, want %d\n",
			awareRep.FinalStep, blindRep.FinalStep, iters)
	}
	if awareRep.StepsLost != 0 {
		violations++
		fmt.Fprintf(w, "spot: aware replay lost %d steps; covered notices must drain losslessly\n",
			awareRep.StepsLost)
	}
	if awareRep.CleanDrains != len(spotTrace) || awareRep.NoticesMissed != 0 {
		violations++
		fmt.Fprintf(w, "spot: aware replay drains %d/%d clean (%d missed)\n",
			awareRep.CleanDrains, len(spotTrace), awareRep.NoticesMissed)
	}
	if blindRep.StepsLost == 0 {
		violations++
		fmt.Fprintf(w, "spot: blind replay lost no steps; the trace exercises nothing\n")
	}
	if speedup < spotSpeedupGate {
		violations++
		fmt.Fprintf(w, "spot: achieved speedup %.3fx < gate %.1fx\n", speedup, spotSpeedupGate)
	}
	fmt.Fprintf(w, "spot: replay: aware %.4f steps/iter-time (lost %d, %d clean drains, cadence %d) vs blind %.4f (lost %d, %d faults, cadence %d): %.3fx achieved speedup (gate %.1fx)\n",
		awareStats.AchievedThroughput, awareRep.StepsLost, awareRep.CleanDrains, awareCadence,
		blindStats.AchievedThroughput, blindRep.StepsLost, blindRep.FaultsDetected, blindCadence,
		speedup, spotSpeedupGate)

	// --- Chaos slice ---------------------------------------------------
	crep := chaos.RunSpot(chaos.Options{
		Trials: trials,
		Seed:   seed,
		Log: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	fmt.Fprint(w, crep.Summary())
	violations += len(crep.Violations)

	out := spotBenchFile{
		Setting: fmt.Sprintf("planner: GPT-3 350M on 8 reserved + 8 spot V100s (6 reclaims/hour, 120s notice); replay: MLP(%d layers, dim %d, batch %d) on 8 emulated V100s, %d-reclaim trace over %d iterations, seed %d",
			layers, dim, batch, len(spotTrace), iters, seed),
		Seed:                  seed,
		AwareNominalIterTime:  aware.Best.Estimate.IterTime,
		AwareExpectedIterTime: awareExpected,
		AwareExplored:         aware.Explored,
		RecommendedCadence:    aware.RecommendedCadence,
		BlindNominalIterTime:  blindNominal,
		BlindExpectedIterTime: blindExpected,
		BlindExplored:         blindRes.Explored,
		ExpectedSpeedup:       blindExpected / awareExpected,
		ReplayIterations:      iters,
		ReplayReclaims:        len(spotTrace),
		Aware:                 awareStats,
		Blind:                 blindStats,
		AchievedSpeedup:       speedup,
		SpeedupGate:           spotSpeedupGate,
		ChaosTrials:           crep.Trials,
		ChaosSurvivedRuns:     crep.Plans,
		ChaosTypedErrs:        crep.TypedErrs,
		Metrics:               reg,
	}
	for _, v := range crep.Violations {
		out.ChaosViolations = append(out.ChaosViolations,
			fmt.Sprintf("trial %d seed %d [%s]: %s", v.Trial, v.Seed, v.Kind, v.Detail))
	}

	f, err := os.Create(outFile)
	if err != nil {
		return violations, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return violations, err
	}
	if err := f.Close(); err != nil {
		return violations, err
	}
	fmt.Fprintf(w, "spot: report → %s\n", outFile)
	return violations, nil
}
