// Command acesobench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	acesobench [-budget 2s] [-sizes 5] [-seed 1] [targets...]
//
// Targets: fig1 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
// fig16 tables cases ablations, or "all" (default).
// fig7/fig8/fig15/fig16/tables share one end-to-end run.
//
// The extra target "search" (not part of "all") measures raw search
// throughput on the fixed-iteration GPT-3 2.6B / 16-GPU setting of
// BenchmarkSearchThroughput and writes BENCH_search.json (see
// -benchfile), preserving any previously recorded baseline so the file
// carries before/after numbers across optimization work. With -guard
// the target instead *checks* the committed file: it reruns the
// measurement, leaves the file untouched, and exits non-zero if the
// explored count drifted (the search is bit-identical by contract) or
// ns/op / allocs/op regressed beyond -guard-ns-tol / -guard-alloc-tol.
//
// The extra target "scale" (not part of "all") runs the search on
// synthetic thousand-device clusters — 1024, 2048 and 4096 V100s with
// uniform graphs of 2560, 5120 and 10240 operators — under a fixed
// iteration budget (-scale-iters) and writes BENCH_scale.json (see
// -scalefile). Explored counts are the determinism fingerprint at
// scale: when the committed file already has a row for a setting, a
// differing count makes the run exit non-zero.
//
// Any target combination can be profiled with -cpuprofile and
// -memprofile, which write pprof files covering everything the
// invocation ran (the profiles are finalized even when a target fails;
// see DESIGN.md §5g for the profiling workflow).
//
// The extra target "chaos" (not part of "all") runs the fault-injection
// harness of internal/chaos for -chaos-duration (or -chaos-trials
// trials), and exits non-zero if any trial panics, returns an invalid
// plan, or leaks a non-finite score.
//
// The extra target "diff" (not part of "all") runs the differential
// model-vs-simulator validation of internal/diffcheck for -diff-trials
// randomized tuples (twice with -diff-effects-on: once per mode),
// writes BENCH_diff.json (trials, violations, signed-band percentiles,
// metrics) plus one BENCH_diff_repro_NNN.json per shrunken violation,
// and exits non-zero on any invariant violation.
//
// The extra target "hetero" (not part of "all") runs the heterogeneous
// planning case study: a fixed-iteration search of GPT-3 1.3B on a
// mixed A100+V100 fleet against the best class-blind plan re-priced on
// the same fleet (plus homogeneous all-A100/all-V100 baselines), and a
// mixed-cluster slice of the differential validation. It writes
// BENCH_hetero.json (see -heterofile) and exits non-zero if the
// hetero-aware plan does not strictly beat the class-blind one or any
// diff tuple violates an invariant; with -guard it checks the
// committed file instead — explored counts and the chosen plan's
// fingerprint must match exactly.
//
// The extra target "elastic" (not part of "all") runs the elastic
// training runtime end to end — train, kill a device mid-iteration,
// Replan on the degraded cluster, reshard the last checkpoint, resume
// — against an uninterrupted reference run, then hammers the same loop
// with -elastic-trials randomized chaos trials. It writes
// BENCH_elastic.json (see -elasticfile) with recovery latency, bytes
// moved by the reshard and the post-resume loss delta, and exits
// non-zero if the trajectories diverge or any chaos trial violates a
// runtime invariant.
//
// The extra target "spot" (not part of "all") runs the spot-capacity
// case study: risk-aware planning on a mixed reserved/spot fleet
// against the hazard-blind search re-priced under the true hazard, a
// deterministic preemption trace replayed through the churn supervisor
// twice (notices honored vs ignored), and the randomized spot chaos
// pass. It writes BENCH_spot.json (see -spotfile) and exits non-zero
// unless the risk-aware replay achieves at least 1.2x the risk-blind
// replay's achieved throughput.
//
// The extra target "trace" (not part of "all") runs a fixed-iteration
// search with the full observability stack attached: it writes the
// deterministic JSONL iteration trace to -tracefile, a summary
// (metrics snapshot, convergence curve, auditor tally) next to it as
// BENCH_trace.json, and exits non-zero if the breakdown auditor finds
// any resource-accounting violation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"aceso/internal/chaos"
	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/diffcheck"
	"aceso/internal/elastic"
	"aceso/internal/exps"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/perfmodel"
	art "aceso/internal/runtime"
	"aceso/internal/tensor"
)

// searchMeasurement is one timed run of the fixed-iteration search.
type searchMeasurement struct {
	NsPerOp     int64 `json:"ns_per_op"`
	Explored    int   `json:"explored"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// searchBenchFile is the BENCH_search.json schema. Baseline is written
// once (first run on a machine) and preserved afterwards; Current is
// overwritten on every run.
type searchBenchFile struct {
	Benchmark string             `json:"benchmark"`
	Setting   string             `json:"setting"`
	Baseline  *searchMeasurement `json:"baseline,omitempty"`
	Current   searchMeasurement  `json:"current"`
	Speedup   float64            `json:"speedup,omitempty"`
}

// runSearchBench mirrors BenchmarkSearchThroughput: an
// iteration-bounded (never deadline-bounded) search of GPT-3 2.6B on
// 16 V100s, so ns/op tracks the machinery's cost per fixed amount of
// exploration.
func runSearchBench(reps int) (searchMeasurement, error) {
	var m searchMeasurement
	if reps < 1 {
		reps = 1
	}
	g, err := model.GPT3("2.6B")
	if err != nil {
		return m, err
	}
	cl := hardware.DGX1V100(2) // 16 V100s
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		res, err := core.Search(g, cl, core.Options{
			TimeBudget:    time.Hour,
			MaxIterations: 4,
			Seed:          1,
		})
		if err != nil {
			return m, err
		}
		m.Explored = res.Explored
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	m.NsPerOp = elapsed.Nanoseconds() / int64(reps)
	m.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / int64(reps)
	m.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / int64(reps)
	return m, nil
}

// emitSearchBench writes BENCH_search.json, keeping an existing
// baseline (and its explored count as the reference) if the file is
// already present.
func emitSearchBench(path string, cur searchMeasurement) (searchBenchFile, error) {
	out := searchBenchFile{
		Benchmark: "BenchmarkSearchThroughput",
		Setting:   "GPT-3 2.6B on 16xV100 (DGX1V100(2)), MaxIterations=4, Seed=1, fixed-iteration",
		Current:   cur,
	}
	if raw, err := os.ReadFile(path); err == nil {
		var prev searchBenchFile
		if err := json.Unmarshal(raw, &prev); err == nil && prev.Baseline != nil {
			out.Baseline = prev.Baseline
		}
	}
	if out.Baseline == nil {
		b := cur
		out.Baseline = &b
	}
	if cur.NsPerOp > 0 {
		out.Speedup = float64(out.Baseline.NsPerOp) / float64(cur.NsPerOp)
	}
	f, err := os.Create(path)
	if err != nil {
		return out, err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return out, enc.Encode(out)
}

// scaleRow is one cluster/graph point of the scale benchmark.
type scaleRow struct {
	Devices     int     `json:"devices"`
	Ops         int     `json:"ops"`
	StageCounts []int   `json:"stage_counts"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	Explored    int     `json:"explored"`
	BestScore   float64 `json:"best_iter_time_seconds"`
	AllocMB     float64 `json:"alloc_mb"`
}

// scaleBenchFile is the BENCH_scale.json schema. Explored counts are
// the determinism fingerprint: wall times vary with the machine, but a
// fixed-iteration search must visit exactly the same configurations on
// every run, at any cluster size.
type scaleBenchFile struct {
	Setting       string     `json:"setting"`
	MaxIterations int        `json:"max_iterations"`
	Seed          int64      `json:"seed"`
	Rows          []scaleRow `json:"rows"`
}

// scalePoints are the synthetic thousand-device settings of the scale
// target: DGX-1-like nodes (8 V100s each) and uniform graphs sized so
// the largest point is a 4096-device, 10240-operator search.
var scalePoints = []struct{ nodes, ops int }{
	{128, 2560},
	{256, 5120},
	{512, 10240},
}

// scaleStageCounts pins the pipeline depths searched per point. The
// automatic set (§4.3) tops out at 32 stages anyway; pinning it keeps
// the fingerprint independent of future auto-set changes.
var scaleStageCounts = []int{8, 16, 32}

// runScaleBench runs the fixed-iteration search on each scale point,
// writes the report, and returns how many rows drifted from the
// explored counts previously recorded in path.
func runScaleBench(path string, iters int, seed int64, w io.Writer) (int, error) {
	var prev scaleBenchFile
	havePrev := false
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &prev); err == nil {
			havePrev = prev.MaxIterations == iters && prev.Seed == seed
		}
	}
	out := scaleBenchFile{
		Setting: fmt.Sprintf("uniform synthetic graphs on DGX1V100 clusters, StageCounts=%v, MaxIterations=%d, Seed=%d, fixed-iteration",
			scaleStageCounts, iters, seed),
		MaxIterations: iters,
		Seed:          seed,
	}
	drift := 0
	for _, pt := range scalePoints {
		g := model.Uniform(pt.ops, 1e9, 1e6, 1e5, 1024)
		cl := hardware.DGX1V100(pt.nodes)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := core.Search(g, cl, core.Options{
			TimeBudget:    time.Hour, // iteration-bounded, like the search bench
			MaxIterations: iters,
			Seed:          seed,
			StageCounts:   scaleStageCounts,
		})
		if err != nil {
			return drift, fmt.Errorf("%d devices / %d ops: %w", cl.TotalDevices(), pt.ops, err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		row := scaleRow{
			Devices:     cl.TotalDevices(),
			Ops:         pt.ops,
			StageCounts: scaleStageCounts,
			ElapsedMs:   float64(elapsed.Nanoseconds()) / 1e6,
			Explored:    res.Explored,
			BestScore:   res.Best.Score,
			AllocMB:     float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		}
		out.Rows = append(out.Rows, row)
		fmt.Fprintf(w, "scale: %4d devices, %5d ops: %8.0fms, %d explored, best %.4fs, %.0f MB allocated\n",
			row.Devices, row.Ops, row.ElapsedMs, row.Explored, row.BestScore, row.AllocMB)
		if havePrev {
			for _, p := range prev.Rows {
				if p.Devices == row.Devices && p.Ops == row.Ops {
					if p.Explored != row.Explored {
						drift++
						fmt.Fprintf(w, "scale: DRIFT at %d devices / %d ops: explored %d, recorded %d\n",
							row.Devices, row.Ops, row.Explored, p.Explored)
					}
					break
				}
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return drift, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return drift, err
	}
	if err := f.Close(); err != nil {
		return drift, err
	}
	fmt.Fprintf(w, "scale: report → %s\n", path)
	return drift, nil
}

// tracePoint is one convergence-curve sample in BENCH_trace.json.
type tracePoint struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Score          float64 `json:"score"`
}

// traceSummary is the BENCH_trace.json schema: everything the trace
// run produced except the per-iteration JSONL stream itself. The
// convergence samples carry wall-clock times, so this file — unlike
// the JSONL trace — is not byte-identical across runs.
type traceSummary struct {
	Setting     string        `json:"setting"`
	Iterations  int           `json:"iterations"`
	Explored    int           `json:"explored"`
	BestScore   float64       `json:"best_iter_time_seconds"`
	Audited     int64         `json:"estimates_audited"`
	Violations  []string      `json:"breakdown_violations,omitempty"`
	Convergence []tracePoint  `json:"convergence"`
	Metrics     *obs.Registry `json:"metrics"`
}

// runTrace executes the fixed-iteration observability run: the same
// GPT-3 2.6B / 16-V100 setting as the search benchmark, with the JSONL
// tracer, the metrics registry and the breakdown auditor all attached.
func runTrace(traceFile, summaryFile string, iters int, seed int64, w io.Writer) error {
	g, err := model.GPT3("2.6B")
	if err != nil {
		return err
	}
	cl := hardware.DGX1V100(2) // 16 V100s
	jsonl := obs.NewJSONLTracer()
	auditor := obs.NewAuditor()
	reg := obs.NewRegistry()
	res, err := core.Search(g, cl, core.Options{
		TimeBudget:    time.Hour, // iteration-bounded, like the bench
		MaxIterations: iters,
		Seed:          seed,
		CollectTrace:  true,
		Tracer:        obs.MultiTracer(jsonl, auditor),
		Metrics:       reg,
	})
	if err != nil {
		return err
	}

	tf, err := os.Create(traceFile)
	if err != nil {
		return err
	}
	if _, err := jsonl.WriteTo(tf); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	sum := traceSummary{
		Setting:    fmt.Sprintf("GPT-3 2.6B on 16xV100 (DGX1V100(2)), MaxIterations=%d, Seed=%d", iters, seed),
		Iterations: res.Iterations,
		Explored:   res.Explored,
		BestScore:  res.Best.Score,
		Audited:    auditor.Checked(),
		Violations: auditor.Violations(),
		Metrics:    reg,
	}
	for _, p := range res.Trace.Convergence() {
		sum.Convergence = append(sum.Convergence, tracePoint{
			ElapsedSeconds: p.Elapsed.Seconds(),
			Score:          p.Score,
		})
	}
	sf, err := os.Create(summaryFile)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(sf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}

	fmt.Fprintf(w, "trace: %d iterations, %d explored, best %.4fs, %d estimates audited\n",
		res.Iterations, res.Explored, res.Best.Score, auditor.Checked())
	fmt.Fprintf(w, "trace: events → %s, summary → %s\n", traceFile, summaryFile)
	if err := auditor.Err(); err != nil {
		return err
	}
	return nil
}

// diffBenchFile is the BENCH_diff.json schema: one report per checked
// mode, the metrics snapshot, and pointers to any repro files written
// alongside.
type diffBenchFile struct {
	Setting    string              `json:"setting"`
	Reports    []*diffcheck.Report `json:"reports"`
	ReproFiles []string            `json:"repro_files,omitempty"`
	Metrics    *obs.Registry       `json:"metrics"`
}

// runDiff executes the differential validation target: an effects-off
// run (hard invariants), optionally an effects-on run (calibration
// band), BENCH_diff.json, and one repro JSON per shrunken violation.
// The returned violation count drives the process exit code.
func runDiff(outFile string, trials int, seed int64, effectsOn bool, w io.Writer) (int, error) {
	reg := obs.NewRegistry()
	modes := []bool{false}
	if effectsOn {
		modes = append(modes, true)
	}
	out := diffBenchFile{
		Setting: fmt.Sprintf("randomized model-vs-simulator tuples, %d trials/mode, seed %d", trials, seed),
		Metrics: reg,
	}
	violations := 0
	for _, on := range modes {
		rep := diffcheck.Run(diffcheck.Options{
			Trials:    trials,
			Seed:      seed,
			EffectsOn: on,
			Metrics:   reg,
			Log: func(format string, args ...any) {
				fmt.Fprintf(w, format+"\n", args...)
			},
		})
		fmt.Fprint(w, rep.Summary())
		out.Reports = append(out.Reports, rep)
		for _, v := range rep.Violations {
			name := fmt.Sprintf("%s_repro_%03d.json",
				strings.TrimSuffix(outFile, filepath.Ext(outFile)), violations)
			violations++
			raw, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				return violations, err
			}
			if err := os.WriteFile(name, append(raw, '\n'), 0o644); err != nil {
				return violations, err
			}
			out.ReproFiles = append(out.ReproFiles, name)
			fmt.Fprintf(w, "diff: wrote shrunken repro → %s\n", name)
		}
	}
	f, err := os.Create(outFile)
	if err != nil {
		return violations, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return violations, err
	}
	if err := f.Close(); err != nil {
		return violations, err
	}
	fmt.Fprintf(w, "diff: report → %s\n", outFile)
	return violations, nil
}

// heteroBenchFile is the BENCH_hetero.json schema: the heterogeneous
// planning case study (mixed A100+V100 fleet vs the best class-blind
// plan re-priced on the same fleet, with homogeneous baselines for
// context) plus the hetero slice of the differential smoke. The
// search is fully deterministic — iteration-bounded, fixed seed — so
// explored counts, plan shapes and iteration times are all exact
// fingerprints a -guard run can compare against.
type heteroBenchFile struct {
	Setting        string  `json:"setting"`
	Seed           int64   `json:"seed"`
	HeteroIterTime float64 `json:"hetero_iter_time_s"`
	HeteroExplored int     `json:"hetero_explored"`
	HeteroPlan     string  `json:"hetero_plan"`
	BlindIterTime  float64 `json:"blind_iter_time_s"` // best blind plan re-priced on the mixed fleet
	BlindExplored  int     `json:"blind_explored"`
	BlindFeasible  int     `json:"blind_feasible_plans"`
	Speedup        float64 `json:"speedup"` // blind / hetero iteration time
	AllA100Time    float64 `json:"all_a100_iter_time_s"`
	AllV100Time    float64 `json:"all_v100_iter_time_s"`
	DiffTrials     int     `json:"diff_trials"`
	DiffViolations int     `json:"diff_violations"`
}

// planFingerprint renders a configuration's shape as a stable string —
// stage boundaries and device counts — so plan drift (as opposed to
// mere cost drift) is directly visible in the guard diff.
func planFingerprint(cfg *config.Config) string {
	if cfg == nil {
		return "none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mb%d", cfg.MicroBatch)
	for _, st := range cfg.Stages {
		fmt.Fprintf(&b, ";%d-%d/%dd", st.Start, st.End, st.Devices)
	}
	return b.String()
}

// runHeteroBench runs the heterogeneous planning case study: a
// fixed-iteration search of GPT-3 1.3B on one A100 node + one V100
// node, against (a) a class-blind search over the same scalar envelope
// whose candidates are re-priced under the true mixed model — the
// penalty a homogeneous planner pays on a real mixed fleet — and
// (b) homogeneous all-A100 / all-V100 fleets for context. It then runs
// the hetero slice of the differential validation (every tuple on a
// mixed-class cluster) with a zero-violation gate. With guard set the
// committed file is checked instead of rewritten: explored counts and
// the plan fingerprint must match exactly, and the hetero plan must
// still strictly beat the blind one.
func runHeteroBench(outFile string, guardMode bool, diffTrials int, seed int64, w io.Writer) error {
	g, err := model.GPT3("1.3B")
	if err != nil {
		return err
	}
	mixed := hardware.A100V100(1, 1) // 8×A100-80GB + 8×V100-32GB
	opts := core.Options{
		TimeBudget:    time.Hour, // iterations are the binding limit
		MaxIterations: 4,
		StageCounts:   []int{2, 4},
		Seed:          seed,
	}
	hetero, err := core.Search(g, mixed, opts)
	if err != nil {
		return err
	}
	if !hetero.Best.Estimate.Feasible {
		return fmt.Errorf("hetero search found no feasible plan")
	}

	// Class-blind: identical envelope, class table stripped — every
	// device looks like a full-speed A100 — then every candidate is
	// re-priced under the true mixed model.
	blind := mixed
	blind.Classes = nil
	blind.NodeClass = nil
	blindRes, err := core.Search(g, blind, opts)
	if err != nil {
		return err
	}
	truth := perfmodel.New(g, mixed, seed)
	blindTime, blindFeasible := 0.0, 0
	for _, cand := range append([]core.Candidate{blindRes.Best}, blindRes.TopK...) {
		if cand.Config == nil {
			continue
		}
		est := truth.Estimate(cand.Config)
		if !est.Feasible {
			continue
		}
		blindFeasible++
		if blindTime == 0 || est.IterTime < blindTime {
			blindTime = est.IterTime
		}
	}
	if blindFeasible == 0 {
		return fmt.Errorf("no class-blind plan is feasible on the mixed fleet; the strict comparison is vacuous")
	}

	homTime := func(cl hardware.Cluster) (float64, error) {
		res, err := core.Search(g, cl, opts)
		if err != nil {
			return 0, err
		}
		if !res.Best.Estimate.Feasible {
			return 0, fmt.Errorf("no feasible plan")
		}
		return res.Best.Estimate.IterTime, nil
	}
	a100Time, err := homTime(hardware.A100V100(2, 0))
	if err != nil {
		return fmt.Errorf("all-A100 baseline: %w", err)
	}
	v100Time, err := homTime(hardware.A100V100(0, 2))
	if err != nil {
		return fmt.Errorf("all-V100 baseline: %w", err)
	}

	fmt.Fprintf(w, "hetero: mixed-aware %.4fs (explored %d, plan %s)\n",
		hetero.Best.Estimate.IterTime, hetero.Explored, planFingerprint(hetero.Best.Config))
	fmt.Fprintf(w, "hetero: class-blind %.4fs re-priced (explored %d, %d/%d plans feasible) — speedup %.3fx\n",
		blindTime, blindRes.Explored, blindFeasible, 1+len(blindRes.TopK),
		blindTime/hetero.Best.Estimate.IterTime)
	fmt.Fprintf(w, "hetero: homogeneous baselines: all-A100 %.4fs, all-V100 %.4fs\n", a100Time, v100Time)
	if hetero.Best.Estimate.IterTime >= blindTime {
		return fmt.Errorf("hetero-aware plan (%.6fs) does not strictly beat the best class-blind plan (%.6fs)",
			hetero.Best.Estimate.IterTime, blindTime)
	}

	// Hetero diff slice: every tuple on a mixed-class cluster; the
	// class-aware model and simulator must agree with zero violations.
	rep := diffcheck.Run(diffcheck.Options{
		Trials:    diffTrials,
		Seed:      seed,
		Generator: diffcheck.RandomHeteroTuple,
		Log: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	fmt.Fprint(w, rep.Summary())
	if rep.Failed() {
		return fmt.Errorf("%d hetero diff violations", len(rep.Violations))
	}

	out := heteroBenchFile{
		Setting: fmt.Sprintf("GPT-3 1.3B on 8×A100-80GB + 8×V100-32GB, %d iterations, stage counts {2,4}, seed %d",
			opts.MaxIterations, seed),
		Seed:           seed,
		HeteroIterTime: hetero.Best.Estimate.IterTime,
		HeteroExplored: hetero.Explored,
		HeteroPlan:     planFingerprint(hetero.Best.Config),
		BlindIterTime:  blindTime,
		BlindExplored:  blindRes.Explored,
		BlindFeasible:  blindFeasible,
		Speedup:        blindTime / hetero.Best.Estimate.IterTime,
		AllA100Time:    a100Time,
		AllV100Time:    v100Time,
		DiffTrials:     rep.Trials,
		DiffViolations: len(rep.Violations),
	}

	if guardMode {
		raw, err := os.ReadFile(outFile)
		if err != nil {
			return fmt.Errorf("no committed benchmark to guard against: %w", err)
		}
		var rec heteroBenchFile
		if err := json.Unmarshal(raw, &rec); err != nil {
			return err
		}
		switch {
		case out.HeteroExplored != rec.HeteroExplored:
			return fmt.Errorf("hetero explored %d, recorded %d — the search is no longer bit-identical",
				out.HeteroExplored, rec.HeteroExplored)
		case out.BlindExplored != rec.BlindExplored:
			return fmt.Errorf("class-blind explored %d, recorded %d — the homogeneous search drifted",
				out.BlindExplored, rec.BlindExplored)
		case out.HeteroPlan != rec.HeteroPlan:
			return fmt.Errorf("hetero plan %q, recorded %q — the chosen plan drifted",
				out.HeteroPlan, rec.HeteroPlan)
		}
		fmt.Fprintf(w, "guard: ok — explored counts and plan match %s\n", outFile)
		return nil
	}

	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outFile, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "hetero: report → %s\n", outFile)
	return nil
}

// elasticBenchFile is the BENCH_elastic.json schema: the measured
// recovery of one deterministic kill-and-resume run, plus the verdict
// of the randomized chaos pass over the same loop.
type elasticBenchFile struct {
	Setting              string        `json:"setting"`
	Iterations           int           `json:"iterations"`
	FaultRank            int           `json:"fault_rank"`
	FaultIteration       int           `json:"fault_iteration"`
	DevicesBefore        int           `json:"devices_before"`
	DevicesAfter         int           `json:"devices_after"`
	Checkpoints          int           `json:"checkpoints"`
	RecoveryMs           float64       `json:"recovery_ms"`
	ReshardBytesMoved    int64         `json:"reshard_bytes_moved"`
	LossDeltaAfterResume float64       `json:"loss_delta_after_resume"`
	MaxParamDiff         float64       `json:"max_param_diff"`
	ChaosTrials          int           `json:"chaos_trials"`
	ChaosRecoveredRuns   int           `json:"chaos_recovered_runs"`
	ChaosTypedErrs       int           `json:"chaos_typed_errors"`
	ChaosViolations      []string      `json:"chaos_violations,omitempty"`
	Metrics              *obs.Registry `json:"metrics"`
}

// elasticTol is the acceptance bound on the stitched-vs-uninterrupted
// trajectory: reshard is a pure float64 repartition, so anything above
// accumulated rounding noise means recovery corrupted state.
const elasticTol = 1e-9

// runElasticBench measures one deterministic elastic recovery (pp2×tp2
// MLP on 4 devices, device 2 killed mid-run) against an uninterrupted
// reference, runs the randomized chaos pass, writes BENCH_elastic.json
// and returns how many invariants failed.
func runElasticBench(outFile string, trials int, seed int64, w io.Writer) (int, error) {
	const (
		layers, dim, batch = 6, 16, 32
		iters              = 8
		lr                 = 0.05
	)
	g, err := model.MLP(layers, dim, batch)
	if err != nil {
		return 0, err
	}
	cfg, err := config.Balanced(g, 4, 2, 8) // 2 stages × 2 devices, mbs 8
	if err != nil {
		return 0, err
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: 2, DP: 1}
		}
	}
	cl := hardware.DGX1V100(1).Restrict(4)
	if err := cfg.Validate(g, cl.TotalDevices()); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	x, y := tensor.New(batch, dim), tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}

	ref := art.InitParams(g, seed)
	ref.Opt = art.Adam
	refLosses, err := art.Parallel(g, cfg, ref, x, y, lr, iters)
	if err != nil {
		return 0, err
	}

	dir, err := os.MkdirTemp("", "aceso-elastic-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	reg := obs.NewRegistry()
	p := art.InitParams(g, seed)
	p.Opt = art.Adam
	fault := &art.FaultPlan{Rank: 2, Iteration: iters / 2}
	rep, err := elastic.Train(context.Background(), g, cl, cfg, p, x, y, iters, fault,
		elastic.Options{
			LR:              lr,
			CheckpointEvery: 2,
			Dir:             dir,
			SearchBudget:    300 * time.Millisecond,
			Seed:            seed,
			Metrics:         reg,
		})
	if err != nil {
		return 0, err
	}

	out := elasticBenchFile{
		Setting: fmt.Sprintf("MLP(%d layers, dim %d, batch %d), pp2×tp2 on 4 V100s, device %d killed at iteration %d, checkpoint every 2, seed %d",
			layers, dim, batch, fault.Rank, fault.Iteration, seed),
		Iterations:           iters,
		FaultRank:            fault.Rank,
		FaultIteration:       fault.Iteration,
		DevicesBefore:        cl.TotalDevices(),
		DevicesAfter:         rep.Config.TotalDevices(),
		Checkpoints:          rep.Checkpoints,
		RecoveryMs:           float64(rep.Recovery.Nanoseconds()) / 1e6,
		ReshardBytesMoved:    rep.ReshardBytesMoved,
		LossDeltaAfterResume: math.Abs(refLosses[iters-1] - rep.Losses[iters-1]),
		MaxParamDiff:         ref.MaxDiff(rep.Params),
		Metrics:              reg,
	}
	violations := 0
	if rep.FaultsInjected != 1 || rep.Reshards != 1 || rep.FinalStep != iters {
		violations++
		fmt.Fprintf(w, "elastic: recovery incomplete: faults=%d reshards=%d final step %d/%d\n",
			rep.FaultsInjected, rep.Reshards, rep.FinalStep, iters)
	}
	if out.LossDeltaAfterResume > elasticTol || out.MaxParamDiff > elasticTol {
		violations++
		fmt.Fprintf(w, "elastic: resumed trajectory diverged: loss delta %g, param diff %g (tol %g)\n",
			out.LossDeltaAfterResume, out.MaxParamDiff, elasticTol)
	}
	fmt.Fprintf(w, "elastic: recovered in %.1fms (%d→%d devices, %d bytes resharded), loss delta %.3g, param diff %.3g\n",
		out.RecoveryMs, out.DevicesBefore, out.DevicesAfter, out.ReshardBytesMoved,
		out.LossDeltaAfterResume, out.MaxParamDiff)

	crep := chaos.RunElastic(chaos.Options{
		Trials: trials,
		Seed:   seed,
		Log: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	fmt.Fprint(w, crep.Summary())
	out.ChaosTrials = crep.Trials
	out.ChaosRecoveredRuns = crep.Plans
	out.ChaosTypedErrs = crep.TypedErrs
	for _, v := range crep.Violations {
		out.ChaosViolations = append(out.ChaosViolations,
			fmt.Sprintf("trial %d seed %d [%s]: %s", v.Trial, v.Seed, v.Kind, v.Detail))
	}
	violations += len(crep.Violations)

	f, err := os.Create(outFile)
	if err != nil {
		return violations, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return violations, err
	}
	if err := f.Close(); err != nil {
		return violations, err
	}
	fmt.Fprintf(w, "elastic: report → %s\n", outFile)
	return violations, nil
}

// churnBenchFile is the BENCH_churn.json schema: one deterministic
// 20+-event churn schedule survived end to end, with the recovery
// policies' ledger (availability, work lost, replans avoided by
// hysteresis, recovery percentiles), plus the verdict of the
// randomized churn chaos pass.
type churnBenchFile struct {
	Setting           string         `json:"setting"`
	Iterations        int            `json:"iterations"`
	ScheduledEvents   int            `json:"scheduled_events"`
	EventsApplied     int            `json:"events_applied"`
	EventCounts       map[string]int `json:"event_counts"`
	FaultsDetected    int            `json:"faults_detected"`
	AvailabilityPct   float64        `json:"availability_pct"`
	StepsLost         int            `json:"steps_lost"`
	StepsLostPerFault float64        `json:"steps_lost_per_fault"`
	Replans           int            `json:"replans"`
	ReplansAvoided    int            `json:"replans_avoided"`
	Ladder            map[string]int `json:"ladder"`
	Retries           int            `json:"retries"`
	Pauses            int            `json:"pauses"`
	RecoveryP50Ms     float64        `json:"recovery_p50_ms"`
	RecoveryP99Ms     float64        `json:"recovery_p99_ms"`
	Checkpoints       int            `json:"checkpoints"`
	Reshards          int            `json:"reshards"`
	ReshardBytesMoved int64          `json:"reshard_bytes_moved"`
	FinalCadence      int            `json:"final_cadence"`
	FinalDevices      int            `json:"final_devices"`
	LossDeltaFinal    float64        `json:"loss_delta_final"`
	MaxParamDiff      float64        `json:"max_param_diff"`
	Transitions       []string       `json:"transitions"`
	ChaosTrials       int            `json:"chaos_trials"`
	ChaosSurvivedRuns int            `json:"chaos_survived_runs"`
	ChaosTypedErrs    int            `json:"chaos_typed_errors"`
	ChaosViolations   []string       `json:"chaos_violations,omitempty"`
	Metrics           *obs.Registry  `json:"metrics"`
}

// churnSchedule is the deterministic 22-event acceptance schedule: two
// full preempt/readd cycles plus a late third, mild derates the
// hysteresis should absorb, a harsh straggler that must force a
// replan, and fabric derates with restores.
func churnSchedule() elastic.ChurnSpec {
	return elastic.ChurnSpec{Events: []elastic.ChurnEvent{
		{Iteration: 2, Kind: elastic.SlowNode, Device: 5, Scale: 0.9},   // mild blip → deferred
		{Iteration: 3, Kind: elastic.SlowNode, Device: 5, Scale: 1},     // restored
		{Iteration: 4, Kind: elastic.LinkDerate, Scale: 0.85},           // mild fabric congestion
		{Iteration: 5, Kind: elastic.LinkDerate, Scale: 1},              // cleared
		{Iteration: 6, Kind: elastic.Preempt, Device: 6},                // in-plan loss → ladder
		{Iteration: 8, Kind: elastic.Preempt, Device: 7},                // second loss
		{Iteration: 10, Kind: elastic.Readd, Device: 6},                 // capacity returns
		{Iteration: 11, Kind: elastic.Readd, Device: 7},                 // back to full fleet
		{Iteration: 13, Kind: elastic.SlowNode, Device: 1, Scale: 0.3},  // harsh straggler → forced
		{Iteration: 15, Kind: elastic.SlowNode, Device: 1, Scale: 1},    // recovered
		{Iteration: 16, Kind: elastic.LinkDerate, Scale: 0.6},           // heavy congestion
		{Iteration: 18, Kind: elastic.LinkDerate, Scale: 1},             // cleared
		{Iteration: 19, Kind: elastic.Preempt, Device: 0},               // third loss
		{Iteration: 21, Kind: elastic.Readd, Device: 0},                 // returns
		{Iteration: 22, Kind: elastic.SlowNode, Device: 3, Scale: 0.92}, // mild
		{Iteration: 23, Kind: elastic.SlowNode, Device: 4, Scale: 0.92}, // mild
		{Iteration: 24, Kind: elastic.SlowNode, Device: 3, Scale: 1},
		{Iteration: 24, Kind: elastic.SlowNode, Device: 4, Scale: 1},
		{Iteration: 25, Kind: elastic.Preempt, Device: 2}, // late loss
		{Iteration: 26, Kind: elastic.Readd, Device: 2},
		{Iteration: 27, Kind: elastic.LinkDerate, Scale: 0.9}, // parting blip
		{Iteration: 27, Kind: elastic.LinkDerate, Scale: 1},
	}}
}

// runChurnBench survives one deterministic churn schedule (22 mixed
// events over 28 iterations on 8 emulated V100s across 2 nodes) and
// gates on: every iteration completed, the final trajectory matching
// an uninterrupted run within elasticTol, and hysteresis having
// avoided at least one replan search. It then runs the randomized
// churn chaos pass and writes BENCH_churn.json.
func runChurnBench(outFile string, trials int, seed int64, w io.Writer) (int, error) {
	const (
		layers, dim, batch = 6, 16, 32
		iters              = 28
		lr                 = 0.05
	)
	g, err := model.MLP(layers, dim, batch)
	if err != nil {
		return 0, err
	}
	cfg, err := config.Balanced(g, 8, 2, 8) // 2 stages × 4 devices, mbs 8
	if err != nil {
		return 0, err
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: 2, DP: 2}
		}
	}
	// Two 4-device nodes instead of half a DGX: link derates then hit
	// a fabric the plan actually crosses.
	cl := hardware.DGX1V100(2)
	cl.DevicesPerNode = 4
	if err := cl.Validate(); err != nil {
		return 0, err
	}
	if err := cfg.Validate(g, cl.TotalDevices()); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	x, y := tensor.New(batch, dim), tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}

	ref := art.InitParams(g, seed)
	ref.Opt = art.Adam
	refLosses, err := art.Parallel(g, cfg, ref, x, y, lr, iters)
	if err != nil {
		return 0, err
	}

	dir, err := os.MkdirTemp("", "aceso-churn-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	reg := obs.NewRegistry()
	p := art.InitParams(g, seed)
	p.Opt = art.Adam
	spec := churnSchedule()
	rep, err := elastic.Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec,
		elastic.SuperviseOptions{
			Options: elastic.Options{
				LR:              lr,
				CheckpointEvery: 2,
				Dir:             dir,
				SearchBudget:    300 * time.Millisecond,
				Seed:            seed,
				Metrics:         reg,
			},
			BackoffBase:      100 * time.Microsecond,
			BackoffCap:       2 * time.Millisecond,
			SimulateTimeouts: 1, // exercise the backoff policy once
		})
	if err != nil {
		return 0, err
	}

	out := churnBenchFile{
		Setting: fmt.Sprintf("MLP(%d layers, dim %d, batch %d), pp2×tp2×dp2 on 8 emulated V100s (2 nodes × 4), %d-event churn schedule, checkpoint every 2, seed %d",
			layers, dim, batch, len(spec.Events), seed),
		Iterations:        iters,
		ScheduledEvents:   len(spec.Events),
		EventsApplied:     rep.EventsApplied,
		EventCounts:       rep.EventCounts,
		FaultsDetected:    rep.FaultsDetected,
		AvailabilityPct:   100 * rep.Availability(),
		StepsLost:         rep.StepsLost,
		Replans:           rep.Replans,
		ReplansAvoided:    rep.ReplansAvoided,
		Ladder:            rep.Ladder,
		Retries:           rep.Retries,
		Pauses:            rep.Pauses,
		RecoveryP50Ms:     float64(rep.RecoveryPercentile(0.5).Nanoseconds()) / 1e6,
		RecoveryP99Ms:     float64(rep.RecoveryPercentile(0.99).Nanoseconds()) / 1e6,
		Checkpoints:       rep.Checkpoints,
		Reshards:          rep.Reshards,
		ReshardBytesMoved: rep.ReshardBytesMoved,
		FinalCadence:      rep.FinalCadence,
		FinalDevices:      rep.Config.TotalDevices(),
		LossDeltaFinal:    math.Abs(refLosses[iters-1] - rep.Losses[iters-1]),
		MaxParamDiff:      ref.MaxDiff(rep.Params),
		Metrics:           reg,
	}
	if rep.FaultsDetected > 0 {
		out.StepsLostPerFault = float64(rep.StepsLost) / float64(rep.FaultsDetected)
	}
	for _, tr := range rep.Transitions {
		out.Transitions = append(out.Transitions, fmt.Sprintf("step %d [%s] %s", tr.Step, tr.Kind, tr.Detail))
	}

	violations := 0
	if rep.FinalStep != iters || len(rep.Losses) != iters {
		violations++
		fmt.Fprintf(w, "churn: run incomplete: final step %d, %d losses, want %d\n",
			rep.FinalStep, len(rep.Losses), iters)
	}
	if out.LossDeltaFinal > elasticTol || out.MaxParamDiff > elasticTol {
		violations++
		fmt.Fprintf(w, "churn: trajectory diverged: loss delta %g, param diff %g (tol %g)\n",
			out.LossDeltaFinal, out.MaxParamDiff, elasticTol)
	}
	if rep.ReplansAvoided == 0 {
		violations++
		fmt.Fprintf(w, "churn: hysteresis avoided no replans across %d events\n", rep.EventsApplied)
	}
	if rep.FaultsDetected == 0 || rep.Retries == 0 {
		violations++
		fmt.Fprintf(w, "churn: schedule exercised too little: faults=%d retries=%d\n",
			rep.FaultsDetected, rep.Retries)
	}
	fmt.Fprintf(w, "churn: survived %d events (%d faults) in %d iterations: availability %.1f%%, %d steps lost, %d replans (%d avoided), recovery p50 %.1fms p99 %.1fms\n",
		rep.EventsApplied, rep.FaultsDetected, iters, out.AvailabilityPct, rep.StepsLost,
		rep.Replans, rep.ReplansAvoided, out.RecoveryP50Ms, out.RecoveryP99Ms)
	fmt.Fprintf(w, "churn: final trajectory vs uninterrupted: loss delta %.3g, param diff %.3g (gate %g)\n",
		out.LossDeltaFinal, out.MaxParamDiff, elasticTol)

	crep := chaos.RunChurn(chaos.Options{
		Trials: trials,
		Seed:   seed,
		Log: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	fmt.Fprint(w, crep.Summary())
	out.ChaosTrials = crep.Trials
	out.ChaosSurvivedRuns = crep.Plans
	out.ChaosTypedErrs = crep.TypedErrs
	for _, v := range crep.Violations {
		out.ChaosViolations = append(out.ChaosViolations,
			fmt.Sprintf("trial %d seed %d [%s]: %s", v.Trial, v.Seed, v.Kind, v.Detail))
	}
	violations += len(crep.Violations)

	f, err := os.Create(outFile)
	if err != nil {
		return violations, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return violations, err
	}
	if err := f.Close(); err != nil {
		return violations, err
	}
	fmt.Fprintf(w, "churn: report → %s\n", outFile)
	return violations, nil
}

func main() {
	budget := flag.Duration("budget", 2*time.Second, "per-search time budget (the paper used 200s)")
	sizes := flag.Int("sizes", 5, "how many of the 5 model sizes to run (1-5)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory")
	benchFile := flag.String("benchfile", "BENCH_search.json", "output path for the search throughput benchmark")
	benchReps := flag.Int("benchreps", 3, "repetitions of the search throughput benchmark")
	guard := flag.Bool("guard", false, "with the search target: check the committed -benchfile instead of rewriting it; exit non-zero on explored drift or regression beyond the tolerances")
	guardNsTol := flag.Float64("guard-ns-tol", 0.5, "-guard: allowed fractional ns/op regression (wall time is machine-noisy; this catches order-of-magnitude slips, not jitter)")
	guardAllocTol := flag.Float64("guard-alloc-tol", 0.1, "-guard: allowed fractional allocs/op regression (allocation counts are near-deterministic)")
	scaleFile := flag.String("scalefile", "BENCH_scale.json", "output path for the scale target's report")
	scaleIters := flag.Int("scale-iters", 2, "top-level iterations per stage count for the scale target")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile covering the selected targets to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	chaosDur := flag.Duration("chaos-duration", 30*time.Second, "wall budget of the chaos target")
	chaosTrials := flag.Int("chaos-trials", 0, "fixed trial count for the chaos target (0 = run until -chaos-duration)")
	traceFile := flag.String("tracefile", "BENCH_trace.jsonl", "output path for the trace target's JSONL iteration trace")
	traceIters := flag.Int("trace-iters", 4, "top-level iterations per stage count for the trace target")
	diffFile := flag.String("difffile", "BENCH_diff.json", "output path for the diff target's report")
	diffTrials := flag.Int("diff-trials", diffcheck.DefaultTrials, "randomized tuples per mode for the diff target")
	diffEffectsOn := flag.Bool("diff-effects-on", false, "also run the diff target's effects-on calibration pass")
	elasticFile := flag.String("elasticfile", "BENCH_elastic.json", "output path for the elastic target's report")
	elasticTrials := flag.Int("elastic-trials", chaos.DefaultElasticTrials, "randomized chaos trials for the elastic target")
	churnFile := flag.String("churnfile", "BENCH_churn.json", "output path for the churn target's report")
	churnTrials := flag.Int("churn-trials", chaos.DefaultChurnTrials, "randomized chaos trials for the churn target")
	spotFile := flag.String("spotfile", "BENCH_spot.json", "output path for the spot target's report")
	spotTrials := flag.Int("spot-trials", chaos.DefaultSpotTrials, "randomized chaos trials for the spot target")
	heteroFile := flag.String("heterofile", "BENCH_hetero.json", "output path for the hetero target's report")
	heteroDiffTrials := flag.Int("hetero-diff-trials", 512, "randomized mixed-cluster tuples for the hetero target's diff slice")
	serveFile := flag.String("servefile", "BENCH_serve.json", "output path for the serve target's report")
	serveReqs := flag.Int("serve-requests", 1200, "load-phase requests for the serve target")
	serveClients := flag.Int("serve-clients", 32, "concurrent client workers for the serve target")
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "acesobench:", err)
			os.Exit(1)
		}
	}

	set := exps.Settings{Budget: *budget, Sizes: *sizes, Seed: *seed}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]
	sel := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	w := os.Stdout

	// Profiling covers everything the invocation runs. finishProfiles is
	// idempotent and runs even on a failing target, so a profile of the
	// run that exposed a regression is never lost.
	var cpuF *os.File
	profilesDone := false
	finishProfiles := func() {
		if profilesDone {
			return
		}
		profilesDone = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acesobench: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "acesobench: -memprofile: %v\n", err)
			}
			f.Close()
		}
	}
	fail := func(name string, err error) {
		finishProfiles()
		fmt.Fprintf(os.Stderr, "acesobench: %s: %v\n", name, err)
		os.Exit(1)
	}
	defer finishProfiles()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail("cpuprofile", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail("cpuprofile", err)
		}
		cpuF = f
	}
	toCSV := func(name string, write func(f io.Writer) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fail(name, err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fail(name, err)
		}
	}

	if sel("fig1") {
		rows := exps.Fig1(nil)
		exps.RenderFig1(w, rows)
		fmt.Fprintln(w)
		toCSV("fig1.csv", func(f io.Writer) error { return exps.WriteFig1CSV(f, rows) })
	}

	if sel("fig7", "fig8", "fig15", "fig16", "tables") {
		fmt.Fprintf(w, "running end-to-end comparison (budget %v/search, %d sizes)...\n", *budget, set.Sizes)
		e2e, err := exps.RunE2E(set, nil)
		if err != nil {
			fail("e2e", err)
		}
		if sel("fig7") {
			e2e.RenderFig7(w)
			fmt.Fprintln(w)
		}
		if sel("fig8") {
			e2e.RenderFig8(w)
			fmt.Fprintln(w)
		}
		if sel("tables") {
			e2e.RenderTables(w)
			fmt.Fprintln(w)
		}
		if sel("fig15") {
			e2e.RenderFig15(w)
			fmt.Fprintln(w)
		}
		if sel("fig16") {
			e2e.RenderFig16(w)
			fmt.Fprintln(w)
		}
		toCSV("e2e.csv", e2e.WriteCSV)
	}

	if sel("fig9") {
		rows, err := exps.Fig9(set, nil)
		if err != nil {
			fail("fig9", err)
		}
		exps.RenderFig9(w, rows)
		fmt.Fprintln(w)
		toCSV("fig9.csv", func(f io.Writer) error { return exps.WriteFig9CSV(f, rows) })
	}

	if sel("fig10") {
		rows, err := exps.Fig10(set)
		if err != nil {
			fail("fig10", err)
		}
		exps.RenderFig10(w, rows)
		fmt.Fprintln(w)
		toCSV("fig10.csv", func(f io.Writer) error { return exps.WriteFig10CSV(f, rows) })
	}

	if sel("fig11") {
		r, err := exps.Fig11(set)
		if err != nil {
			fail("fig11", err)
		}
		exps.RenderFig11(w, r)
		fmt.Fprintln(w)
		toCSV("fig11.csv", func(f io.Writer) error { return exps.WriteFig11CSV(f, r) })
	}

	if sel("fig12") {
		curves, err := exps.Fig12(set)
		if err != nil {
			fail("fig12", err)
		}
		exps.RenderCurves(w, "Figure 12 (Exp#5): convergence with vs without Heuristic-2", curves)
		fmt.Fprintln(w)
		toCSV("fig12.csv", func(f io.Writer) error { return exps.WriteCurvesCSV(f, curves) })
	}

	if sel("fig13") {
		curves, err := exps.Fig13(set)
		if err != nil {
			fail("fig13", err)
		}
		exps.RenderCurves(w, "Figure 13 (Exp#6): convergence under different MaxHops", curves)
		fmt.Fprintln(w)
		toCSV("fig13.csv", func(f io.Writer) error { return exps.WriteCurvesCSV(f, curves) })
	}

	if sel("fig14") {
		curves, err := exps.Fig14(set)
		if err != nil {
			fail("fig14", err)
		}
		exps.RenderCurves(w, "Figure 14 (Exp#7): robustness to the initial configuration", curves)
		fmt.Fprintln(w)
		toCSV("fig14.csv", func(f io.Writer) error { return exps.WriteCurvesCSV(f, curves) })
	}

	if sel("ablations") {
		rows, memRatio, err := exps.Ablations(set)
		if err != nil {
			fail("ablations", err)
		}
		exps.RenderAblations(w, rows, memRatio)
		fmt.Fprintln(w)
	}

	if want["search"] { // deliberately not part of "all"
		fmt.Fprintf(w, "measuring search throughput (%d reps, fixed-iteration GPT-3 2.6B / 16 GPUs)...\n", *benchReps)
		cur, err := runSearchBench(*benchReps)
		if err != nil {
			fail("search", err)
		}
		fmt.Fprintf(w, "search throughput: %d ns/op, %d explored, %d B/op, %d allocs/op\n",
			cur.NsPerOp, cur.Explored, cur.BytesPerOp, cur.AllocsPerOp)
		if *guard {
			raw, err := os.ReadFile(*benchFile)
			if err != nil {
				fail("guard", fmt.Errorf("no committed benchmark to guard against: %w", err))
			}
			var rec searchBenchFile
			if err := json.Unmarshal(raw, &rec); err != nil {
				fail("guard", err)
			}
			ref := rec.Current
			switch {
			case cur.Explored != ref.Explored:
				fail("guard", fmt.Errorf("explored %d, recorded %d — the search is no longer bit-identical",
					cur.Explored, ref.Explored))
			case float64(cur.AllocsPerOp) > float64(ref.AllocsPerOp)*(1+*guardAllocTol):
				fail("guard", fmt.Errorf("allocs/op %d exceeds recorded %d by more than %.0f%%",
					cur.AllocsPerOp, ref.AllocsPerOp, *guardAllocTol*100))
			case float64(cur.NsPerOp) > float64(ref.NsPerOp)*(1+*guardNsTol):
				fail("guard", fmt.Errorf("ns/op %d exceeds recorded %d by more than %.0f%%",
					cur.NsPerOp, ref.NsPerOp, *guardNsTol*100))
			}
			fmt.Fprintf(w, "guard: ok — explored matches, within %.0f%% ns/op and %.0f%% allocs/op of %s\n",
				*guardNsTol*100, *guardAllocTol*100, *benchFile)
		} else {
			rec, err := emitSearchBench(*benchFile, cur)
			if err != nil {
				fail("search", err)
			}
			fmt.Fprintf(w, "baseline: %d ns/op (speedup %.2fx) — recorded in %s\n",
				rec.Baseline.NsPerOp, rec.Speedup, *benchFile)
		}
		fmt.Fprintln(w)
	}

	if want["scale"] { // deliberately not part of "all"
		fmt.Fprintf(w, "running scale benchmark (%d points up to 4096 devices / 10240 ops, %d iterations, seed %d)...\n",
			len(scalePoints), *scaleIters, *seed)
		drift, err := runScaleBench(*scaleFile, *scaleIters, *seed, w)
		if err != nil {
			fail("scale", err)
		}
		if drift > 0 {
			fail("scale", fmt.Errorf("%d rows drifted from the recorded explored counts", drift))
		}
		fmt.Fprintln(w)
	}

	if sel("cases") {
		cases, err := exps.Cases(set)
		if err != nil {
			fail("cases", err)
		}
		exps.RenderCases(w, cases)
		fmt.Fprintln(w)
	}

	if want["trace"] { // deliberately not part of "all"
		summaryFile := strings.TrimSuffix(*traceFile, filepath.Ext(*traceFile)) + ".json"
		fmt.Fprintf(w, "running traced search (%d iterations/stage-count, seed %d)...\n",
			*traceIters, *seed)
		if err := runTrace(*traceFile, summaryFile, *traceIters, *seed, w); err != nil {
			fail("trace", err)
		}
		fmt.Fprintln(w)
	}

	if want["diff"] { // deliberately not part of "all"
		fmt.Fprintf(w, "running differential validation (%d trials/mode, seed %d, effects-on pass: %v)...\n",
			*diffTrials, *seed, *diffEffectsOn)
		violations, err := runDiff(*diffFile, *diffTrials, *seed, *diffEffectsOn, w)
		if err != nil {
			fail("diff", err)
		}
		if violations > 0 {
			fail("diff", fmt.Errorf("%d invariant violations (repro files written)", violations))
		}
		fmt.Fprintln(w)
	}

	if want["hetero"] { // deliberately not part of "all"
		fmt.Fprintf(w, "running heterogeneous planning case study (+%d mixed-cluster diff trials, seed %d)...\n",
			*heteroDiffTrials, *seed)
		if err := runHeteroBench(*heteroFile, *guard, *heteroDiffTrials, *seed, w); err != nil {
			fail("hetero", err)
		}
		fmt.Fprintln(w)
	}

	if want["elastic"] { // deliberately not part of "all"
		fmt.Fprintf(w, "running elastic recovery benchmark (+%d chaos trials, seed %d)...\n",
			*elasticTrials, *seed)
		violations, err := runElasticBench(*elasticFile, *elasticTrials, *seed, w)
		if err != nil {
			fail("elastic", err)
		}
		if violations > 0 {
			fail("elastic", fmt.Errorf("%d invariant violations", violations))
		}
		fmt.Fprintln(w)
	}

	if want["churn"] { // deliberately not part of "all"
		fmt.Fprintf(w, "running continuous-churn benchmark (+%d chaos trials, seed %d)...\n",
			*churnTrials, *seed)
		violations, err := runChurnBench(*churnFile, *churnTrials, *seed, w)
		if err != nil {
			fail("churn", err)
		}
		if violations > 0 {
			fail("churn", fmt.Errorf("%d invariant violations", violations))
		}
		fmt.Fprintln(w)
	}

	if want["spot"] { // deliberately not part of "all"
		fmt.Fprintf(w, "running spot-capacity benchmark (+%d chaos trials, seed %d)...\n",
			*spotTrials, *seed)
		violations, err := runSpotBench(*spotFile, *spotTrials, *seed, w)
		if err != nil {
			fail("spot", err)
		}
		if violations > 0 {
			fail("spot", fmt.Errorf("%d gate violations", violations))
		}
		fmt.Fprintln(w)
	}

	if want["serve"] { // deliberately not part of "all"
		fmt.Fprintf(w, "running serve load benchmark (%d requests, %d clients)...\n",
			*serveReqs, *serveClients)
		violations, err := runServeBench(*serveFile, *serveReqs, *serveClients, w)
		if err != nil {
			fail("serve", err)
		}
		if violations > 0 {
			fail("serve", fmt.Errorf("%d gate violations", violations))
		}
		fmt.Fprintln(w)
	}

	if want["chaos"] { // deliberately not part of "all"
		dur := *chaosDur
		if *chaosTrials > 0 {
			dur = 0
		}
		fmt.Fprintf(w, "running chaos harness (duration %v, trials %d, seed %d)...\n",
			dur, *chaosTrials, *seed)
		rep := chaos.Run(chaos.Options{
			Trials:   *chaosTrials,
			Duration: dur,
			Seed:     *seed,
			Log: func(format string, args ...any) {
				fmt.Fprintf(w, format+"\n", args...)
			},
		})
		fmt.Fprint(w, rep.Summary())
		if rep.Failed() {
			fail("chaos", fmt.Errorf("%d invariant violations", len(rep.Violations)))
		}
	}
}
