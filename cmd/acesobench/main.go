// Command acesobench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	acesobench [-budget 2s] [-sizes 5] [-seed 1] [targets...]
//
// Targets: fig1 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
// fig16 tables cases ablations, or "all" (default).
// fig7/fig8/fig15/fig16/tables share one end-to-end run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"aceso/internal/exps"
)

func main() {
	budget := flag.Duration("budget", 2*time.Second, "per-search time budget (the paper used 200s)")
	sizes := flag.Int("sizes", 5, "how many of the 5 model sizes to run (1-5)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory")
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "acesobench:", err)
			os.Exit(1)
		}
	}

	set := exps.Settings{Budget: *budget, Sizes: *sizes, Seed: *seed}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]
	sel := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	w := os.Stdout
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "acesobench: %s: %v\n", name, err)
		os.Exit(1)
	}
	toCSV := func(name string, write func(f io.Writer) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fail(name, err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fail(name, err)
		}
	}

	if sel("fig1") {
		rows := exps.Fig1(nil)
		exps.RenderFig1(w, rows)
		fmt.Fprintln(w)
		toCSV("fig1.csv", func(f io.Writer) error { return exps.WriteFig1CSV(f, rows) })
	}

	if sel("fig7", "fig8", "fig15", "fig16", "tables") {
		fmt.Fprintf(w, "running end-to-end comparison (budget %v/search, %d sizes)...\n", *budget, set.Sizes)
		e2e, err := exps.RunE2E(set, nil)
		if err != nil {
			fail("e2e", err)
		}
		if sel("fig7") {
			e2e.RenderFig7(w)
			fmt.Fprintln(w)
		}
		if sel("fig8") {
			e2e.RenderFig8(w)
			fmt.Fprintln(w)
		}
		if sel("tables") {
			e2e.RenderTables(w)
			fmt.Fprintln(w)
		}
		if sel("fig15") {
			e2e.RenderFig15(w)
			fmt.Fprintln(w)
		}
		if sel("fig16") {
			e2e.RenderFig16(w)
			fmt.Fprintln(w)
		}
		toCSV("e2e.csv", e2e.WriteCSV)
	}

	if sel("fig9") {
		rows, err := exps.Fig9(set, nil)
		if err != nil {
			fail("fig9", err)
		}
		exps.RenderFig9(w, rows)
		fmt.Fprintln(w)
		toCSV("fig9.csv", func(f io.Writer) error { return exps.WriteFig9CSV(f, rows) })
	}

	if sel("fig10") {
		rows, err := exps.Fig10(set)
		if err != nil {
			fail("fig10", err)
		}
		exps.RenderFig10(w, rows)
		fmt.Fprintln(w)
		toCSV("fig10.csv", func(f io.Writer) error { return exps.WriteFig10CSV(f, rows) })
	}

	if sel("fig11") {
		r, err := exps.Fig11(set)
		if err != nil {
			fail("fig11", err)
		}
		exps.RenderFig11(w, r)
		fmt.Fprintln(w)
		toCSV("fig11.csv", func(f io.Writer) error { return exps.WriteFig11CSV(f, r) })
	}

	if sel("fig12") {
		curves, err := exps.Fig12(set)
		if err != nil {
			fail("fig12", err)
		}
		exps.RenderCurves(w, "Figure 12 (Exp#5): convergence with vs without Heuristic-2", curves)
		fmt.Fprintln(w)
		toCSV("fig12.csv", func(f io.Writer) error { return exps.WriteCurvesCSV(f, curves) })
	}

	if sel("fig13") {
		curves, err := exps.Fig13(set)
		if err != nil {
			fail("fig13", err)
		}
		exps.RenderCurves(w, "Figure 13 (Exp#6): convergence under different MaxHops", curves)
		fmt.Fprintln(w)
		toCSV("fig13.csv", func(f io.Writer) error { return exps.WriteCurvesCSV(f, curves) })
	}

	if sel("fig14") {
		curves, err := exps.Fig14(set)
		if err != nil {
			fail("fig14", err)
		}
		exps.RenderCurves(w, "Figure 14 (Exp#7): robustness to the initial configuration", curves)
		fmt.Fprintln(w)
		toCSV("fig14.csv", func(f io.Writer) error { return exps.WriteCurvesCSV(f, curves) })
	}

	if sel("ablations") {
		rows, memRatio, err := exps.Ablations(set)
		if err != nil {
			fail("ablations", err)
		}
		exps.RenderAblations(w, rows, memRatio)
		fmt.Fprintln(w)
	}

	if sel("cases") {
		cases, err := exps.Cases(set)
		if err != nil {
			fail("cases", err)
		}
		exps.RenderCases(w, cases)
		fmt.Fprintln(w)
	}
}
