// Package aceso is a from-scratch Go implementation of Aceso (Liu et
// al., EuroSys 2024): an automatic parallel-training configurator that
// searches the joint space of data parallelism, tensor parallelism,
// pipeline parallelism, microbatching and recomputation by iteratively
// identifying the bottleneck pipeline stage and applying the
// reconfiguration primitive that best alleviates it.
//
// The package is a thin facade over the internal packages:
//
//	model     operator-level IR and builders (GPT-3, T5, Wide-ResNet, …)
//	hardware  parametric cluster descriptions
//	perfmodel the profiling-based performance model (Eq. 1–2)
//	pipesim   a discrete-event 1F1B runtime simulator ("execution")
//	core      the bottleneck-alleviation search itself
//
// Quick start:
//
//	g, _ := aceso.GPT3("1.3B")
//	cl := aceso.DGX1V100(1).Restrict(4)
//	res, _ := aceso.Search(g, cl, aceso.Options{TimeBudget: 2 * time.Second})
//	fmt.Println(res.Best.Config)
package aceso

import (
	"context"

	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/perfmodel"
	"aceso/internal/pipesim"
)

// Re-exported core types. External callers cannot import the internal
// packages directly; these aliases are the public names.
type (
	// Graph is a sequential DNN model at operator granularity.
	Graph = model.Graph
	// Op is one operator of a Graph.
	Op = model.Op
	// Cluster describes the accelerator cluster.
	Cluster = hardware.Cluster
	// Config is a complete parallel-training configuration.
	Config = config.Config
	// Stage is one pipeline stage of a Config.
	Stage = config.Stage
	// OpSetting is the per-operator parallelization inside a stage.
	OpSetting = config.OpSetting
	// Options tunes the search (time budget, MaxHops, ablations, …).
	Options = core.Options
	// Result is a search outcome (best config, top-K, statistics).
	Result = core.Result
	// Candidate pairs a configuration with its estimate.
	Candidate = core.Candidate
	// Estimate is the performance model's prediction for a Config.
	Estimate = perfmodel.Estimate
	// StageMetrics is the per-stage slice of an Estimate.
	StageMetrics = perfmodel.StageMetrics
	// SimResult is the runtime simulator's observation of a Config.
	SimResult = pipesim.Result
	// PerfModel predicts execution time and memory for configurations.
	PerfModel = perfmodel.Model
	// Trace carries search statistics (Exp#5–7 instrumentation).
	Trace = core.Trace
	// Initializer builds starting configurations (Exp#7 variants).
	Initializer = core.Initializer
	// SearchError is a typed per-worker failure (panic or initializer
	// error) reported in Result.Diagnostics.
	SearchError = core.SearchError
	// DeviceClass describes one device generation of a heterogeneous
	// cluster (per-class FLOPS, utilization, memory, link overrides).
	DeviceClass = hardware.DeviceClass
	// FaultSpec describes a degraded cluster: dead devices, per-device
	// FLOPS/memory deratings, and derated links.
	FaultSpec = hardware.FaultSpec
	// DeviceFault is one device's entry in a FaultSpec.
	DeviceFault = hardware.DeviceFault
	// Tracer receives structured search events (set Options.Tracer).
	Tracer = obs.Tracer
	// IterationEvent is one JSONL search-trace record.
	IterationEvent = obs.IterationEvent
	// JSONLTracer collects iteration events as deterministic JSON Lines.
	JSONLTracer = obs.JSONLTracer
	// Auditor asserts resource-accounting invariants on every estimate.
	Auditor = obs.Auditor
	// MetricsRegistry accumulates search counters/timers/histograms
	// (set Options.Metrics); exportable as JSON or Prometheus text.
	MetricsRegistry = obs.Registry
)

// Precision of a model's training arithmetic.
const (
	FP16 = hardware.FP16
	FP32 = hardware.FP32
)

// Model builders (Table 2 of the paper).
var (
	// GPT3 builds a GPT-3 decoder stack: "350M", "1.3B", "2.6B",
	// "6.7B" or "13B".
	GPT3 = model.GPT3
	// T5 builds a T5 encoder-decoder: "770M", "3B", "6B", "11B", "22B".
	T5 = model.T5
	// WideResNet builds a widened ResNet-50: "0.5B", "2B", "4B",
	// "6.8B", "13B".
	WideResNet = model.WideResNet
	// Llama builds a Llama-3-style decoder ("8B", "70B") — a modern
	// workload beyond the paper's evaluation set.
	Llama = model.Llama
	// DeepTransformer builds the 1K-layer-scalability model.
	DeepTransformer = model.DeepTransformer
	// DGX1V100 builds an n-node cluster of 8×V100-32GB servers.
	DGX1V100 = hardware.DGX1V100
	// A100V100 builds a mixed fleet: a A100 nodes then v V100 nodes.
	A100V100 = hardware.A100V100
	// Mixed builds a heterogeneous cluster from a per-node class layout.
	Mixed = hardware.Mixed
	// A100Class/V100Class are the canonical device-class descriptions.
	A100Class = hardware.A100Class
	V100Class = hardware.V100Class
	// ReservedSpotV100 builds a mixed-capacity V100 fleet: r reserved
	// nodes then s spot nodes, each spot device reclaimed hazard
	// times/hour with notice seconds of warning (DESIGN.md §5k).
	ReservedSpotV100 = hardware.ReservedSpotV100
	// AsSpot derives the spot twin of a device class.
	AsSpot = hardware.AsSpot
	// RiskAssess prices an existing plan under a cluster's preemption
	// hazard: expected iteration time + recommended checkpoint cadence.
	RiskAssess = core.RiskAssess
)

// Initial-configuration builders.
var (
	// Balanced is the default initializer (FLOPs-balanced stages).
	Balanced = config.Balanced
	// ImbalancedOps/ImbalancedGPUs are the Exp#7 robustness variants.
	ImbalancedOps  = config.ImbalancedOps
	ImbalancedGPUs = config.ImbalancedGPUs
)

// Search runs the Aceso configuration search for graph g over cluster
// cl (Algorithm 1; one parallel worker per pipeline depth).
func Search(g *Graph, cl Cluster, opts Options) (*Result, error) {
	return core.Search(g, cl, opts)
}

// SearchContext is Search with caller-controlled cancellation: the
// search stops at ctx cancellation or deadline (whichever fires first,
// including Options.TimeBudget) and still returns the best
// configurations found so far, with Result.Partial set. A worker that
// panics is isolated and reported as a *SearchError in
// Result.Diagnostics while the remaining pipeline depths finish.
func SearchContext(ctx context.Context, g *Graph, cl Cluster, opts Options) (*Result, error) {
	return core.SearchContext(ctx, g, cl, opts)
}

// Replan re-runs the search for a cluster degraded by faults (dead
// devices, stragglers, derated links), seeded from the surviving
// previous configuration so it converges quickly on a repaired plan.
// prev may be nil for a cold-start search over the degraded cluster.
func Replan(ctx context.Context, g *Graph, cl Cluster, faults FaultSpec, prev *Config, opts Options) (*Result, error) {
	return core.Replan(ctx, g, cl, faults, prev, opts)
}

// Degrade applies a fault specification to a healthy cluster,
// returning the degraded cluster the performance model and search
// consume. Dead devices are removed (surviving devices renumbered);
// derated devices and links keep their logical place but run slower.
func Degrade(cl Cluster, faults FaultSpec) (Cluster, error) {
	return cl.Degrade(faults)
}

// ProjectConfig adapts a configuration to a different device count,
// preserving its structure — the warm start for elastic
// reconfiguration after cluster resizes.
func ProjectConfig(g *Graph, old *Config, newDevices int) (*Config, error) {
	return core.ProjectConfig(g, old, newDevices)
}

// WarmStart wraps a previous best configuration as a search
// Initializer for a resized cluster.
func WarmStart(prev *Config) Initializer { return core.WarmStart(prev) }

// Observability constructors (DESIGN.md §5d).
var (
	// NewJSONLTracer returns a deterministic JSONL search-trace
	// collector for Options.Tracer.
	NewJSONLTracer = obs.NewJSONLTracer
	// NewAuditor returns a breakdown auditor for Options.Tracer.
	NewAuditor = obs.NewAuditor
	// NewMetricsRegistry returns an empty registry for Options.Metrics.
	NewMetricsRegistry = obs.NewRegistry
	// MultiTracer fans events out to several tracers (nils dropped).
	MultiTracer = obs.MultiTracer
	// AuditEstimate checks one estimate's resource-accounting
	// invariants, returning a description of each violation.
	AuditEstimate = obs.AuditEstimate
)

// NewPerfModel builds a performance model with a fresh (deterministic,
// seeded) profiling database for the given graph and cluster.
func NewPerfModel(g *Graph, cl Cluster, seed int64) *PerfModel {
	return perfmodel.New(g, cl, seed)
}

// EstimateConfig predicts iteration time and memory for cfg with a
// fresh performance model.
func EstimateConfig(g *Graph, cl Cluster, cfg *Config, seed int64) *Estimate {
	return perfmodel.New(g, cl, seed).Estimate(cfg)
}

// Simulate executes cfg in the discrete-event 1F1B runtime simulator
// and returns the observed iteration time and peak memory.
func Simulate(g *Graph, cl Cluster, cfg *Config, seed int64) (*SimResult, error) {
	return pipesim.Simulate(perfmodel.New(g, cl, seed), cfg, seed)
}
