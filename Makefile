GO ?= go

.PHONY: build test ci bench-search chaos fuzz-smoke trace-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# ci is the pre-merge gate: vet, the full suite, race-detector runs of
# the packages that share caches across goroutines (the search workers
# and the perfmodel stage cache), a fuzz smoke over every corpus-seeded
# fuzz target, a one-iteration smoke of the search-throughput benchmark
# so hot-path regressions fail loudly, a traced-search smoke (the
# breakdown auditor fails the build on any resource-accounting
# violation), and a short chaos run — which also audits every trial's
# estimates.
ci: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core/... ./internal/perfmodel/...
	$(MAKE) fuzz-smoke
	$(GO) test -run xxx -bench BenchmarkSearchThroughput -benchtime 1x .
	$(MAKE) trace-smoke
	$(MAKE) chaos CHAOS_DURATION=10s

# trace-smoke runs the observability target into a scratch directory:
# it exercises the JSONL tracer, the metrics registry and the breakdown
# auditor on a real search, exiting non-zero on any audit violation.
trace-smoke:
	$(GO) run ./cmd/acesobench -trace-iters 2 -tracefile /tmp/aceso_ci_trace.jsonl trace

# fuzz-smoke runs each fuzz target for a few seconds. `go test -fuzz`
# accepts one target per invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDeviceSplit -fuzztime=5s ./internal/config
	$(GO) test -fuzz=FuzzParseOpKey -fuzztime=5s ./internal/profiler
	$(GO) test -fuzz=FuzzOpKeyRoundTrip -fuzztime=5s ./internal/profiler
	$(GO) test -fuzz=FuzzSearchNeverPanics -fuzztime=5s ./internal/core

# chaos runs the fault-injection harness (internal/chaos) for a short
# wall budget; it exits non-zero on any panic, invalid plan or
# non-finite score. Lengthen with CHAOS_DURATION=120s etc.
CHAOS_DURATION ?= 30s
chaos:
	$(GO) run ./cmd/acesobench -chaos-duration $(CHAOS_DURATION) chaos

# bench-search re-measures search throughput and rewrites the
# "current" block of BENCH_search.json (the recorded baseline is kept).
bench-search:
	$(GO) run ./cmd/acesobench search
