GO ?= go

.PHONY: build test ci bench-search bench-guard bench-scale bench-serve bench-hetero bench-spot chaos fuzz-smoke trace-smoke diff-smoke elastic-smoke churn-smoke serve-smoke hetero-smoke spot-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# ci is the pre-merge gate: vet, the full suite, race-detector runs of
# the packages that share caches across goroutines (the search workers
# and the perfmodel stage cache), a fuzz smoke over every corpus-seeded
# fuzz target, a one-iteration smoke of the search-throughput benchmark
# so hot-path regressions fail loudly, the benchmark guard (explored
# must match the committed BENCH_search.json exactly; ns/op and
# allocs/op must stay within tolerance of it), a traced-search smoke
# (the breakdown auditor fails the build on any resource-accounting
# violation), a short chaos run — which also audits every trial's
# estimates — the differential model-vs-simulator smoke (5k effects-off
# tuples; any Eq.1/Eq.2 invariant violation fails the build and leaves
# a shrunken repro JSON behind), and the elastic-runtime smoke
# (checkpoint → kill → replan → reshard → resume must rejoin the
# uninterrupted trajectory, plus randomized elastic chaos trials), the
# continuous-churn smoke (a seeded multi-event schedule through
# elastic.Supervise plus randomized churn chaos trials), and the
# planning-daemon smoke (start acesod, one cold plan, one cache hit
# that must replay identical bytes, an SSE stream, a /metrics scrape,
# then a real SIGTERM drain), and the heterogeneous-planning smoke (the
# mixed-fleet search must keep beating the re-priced class-blind plan
# with its committed explored counts and plan fingerprint, and a
# mixed-cluster diff slice must stay violation-free), and the spot
# smoke (randomized spot preemption/notice chaos trials plus the
# notice-drain e2e: window ≥ checkpoint cost must lose zero steps).
ci: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core/... ./internal/perfmodel/... ./internal/memo/... ./internal/planserver/... ./internal/plancache/... ./internal/obs/... ./internal/hardware/... ./internal/collective/...
	$(GO) test -race -count=1 -run 'Notice|Spot|DoublePreempt' ./internal/elastic
	$(MAKE) fuzz-smoke
	$(GO) test -run xxx -bench BenchmarkSearchThroughput -benchtime 1x .
	$(MAKE) bench-guard
	$(MAKE) trace-smoke
	$(MAKE) chaos CHAOS_DURATION=10s
	$(MAKE) diff-smoke
	$(MAKE) hetero-smoke
	$(MAKE) elastic-smoke
	$(MAKE) churn-smoke
	$(MAKE) spot-smoke
	$(MAKE) serve-smoke

# trace-smoke runs the observability target into a scratch directory:
# it exercises the JSONL tracer, the metrics registry and the breakdown
# auditor on a real search, exiting non-zero on any audit violation.
trace-smoke:
	$(GO) run ./cmd/acesobench -trace-iters 2 -tracefile /tmp/aceso_ci_trace.jsonl trace

# diff-smoke cross-checks the performance model against the simulator
# in model-faithful mode (internal/diffcheck) on DIFF_TRIALS randomized
# tuples: in-flight counts vs Eq.1, term-for-term memory composition,
# per-stage OOM verdicts, GPipe ≥ 1F1B memory, and the signed
# iteration-time band. Violations shrink to BENCH_diff_repro_*.json and
# fail the build.
DIFF_TRIALS ?= 5000
diff-smoke:
	$(GO) run ./cmd/acesobench -diff-trials $(DIFF_TRIALS) -difffile /tmp/aceso_ci_diff.json diff

# fuzz-smoke runs each fuzz target for a few seconds. `go test -fuzz`
# accepts one target per invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDeviceSplit -fuzztime=5s ./internal/config
	$(GO) test -fuzz=FuzzParseOpKey -fuzztime=5s ./internal/profiler
	$(GO) test -fuzz=FuzzOpKeyRoundTrip -fuzztime=5s ./internal/profiler
	$(GO) test -fuzz=FuzzSearchNeverPanics -fuzztime=5s ./internal/core
	$(GO) test -fuzz=FuzzRestrictExact -fuzztime=5s ./internal/hardware
	$(GO) test -fuzz=FuzzCheckpointLoadNeverPanics -fuzztime=5s ./internal/elastic
	$(GO) test -fuzz=FuzzChurnEventsNeverPanic -fuzztime=5s ./internal/elastic
	$(GO) test -fuzz=FuzzPreemptNoticeNeverPanics -fuzztime=5s ./internal/elastic

# elastic-smoke runs the elastic-runtime benchmark + randomized elastic
# chaos trials via cmd/acesobench: it fails the build if the recovered
# run diverges from the uninterrupted trajectory or any trial panics,
# deadlocks, loses steps or produces a non-finite loss. It writes
# BENCH_elastic.json into /tmp to keep the tree clean.
ELASTIC_TRIALS ?= 12
elastic-smoke:
	$(GO) run ./cmd/acesobench -elastic-trials $(ELASTIC_TRIALS) -elasticfile /tmp/aceso_ci_elastic.json elastic

# churn-smoke runs the continuous-churn supervisor benchmark (a seeded
# 22-event schedule of preemptions, re-additions, stragglers and link
# derates through elastic.Supervise) plus randomized churn chaos
# trials. It fails the build if the supervised run diverges from the
# uninterrupted trajectory, the hysteresis never defers a replan, or
# any trial violates the availability/monotonicity invariants. It
# writes BENCH_churn.json into /tmp to keep the tree clean.
CHURN_TRIALS ?= 12
churn-smoke:
	$(GO) run ./cmd/acesobench -churn-trials $(CHURN_TRIALS) -churnfile /tmp/aceso_ci_churn.json churn

# spot-smoke is the fast spot-capacity gate: randomized Poisson-hazard
# preemption streams — with and without reclaim notices — through
# elastic.Supervise (internal/chaos.RunSpot), plus the notice-drain
# end-to-end test: a notice window at least as long as the checkpoint
# cost must yield a clean drain with zero lost steps and a trajectory
# identical to the uninterrupted run. Part of ci.
spot-smoke:
	$(GO) test -count=1 -run TestRunSpotClean ./internal/chaos
	$(GO) test -count=1 -run 'TestSuperviseNoticeDrainZeroLostSteps|TestSuperviseNoticeMissedFallsBack' ./internal/elastic

# bench-spot re-runs the spot-capacity case study (risk-aware vs
# risk-blind planning under a replayed preemption trace, plus spot
# chaos trials) and rewrites BENCH_spot.json; it exits non-zero if the
# risk-aware plan stops beating the re-priced risk-blind plan or the
# achieved-throughput speedup falls under the 1.2x gate.
bench-spot:
	$(GO) run ./cmd/acesobench -seed 1 spot

# hetero-smoke guards the heterogeneous planning case study against the
# committed BENCH_hetero.json: the mixed-fleet search's explored counts
# and chosen-plan fingerprint must match exactly, the hetero-aware plan
# must strictly beat the best class-blind plan re-priced on the mixed
# fleet, and a short mixed-cluster diffcheck slice must come back with
# zero violations. Part of ci.
hetero-smoke:
	$(GO) run ./cmd/acesobench -guard hetero

# bench-hetero re-runs the heterogeneous planning case study and
# rewrites BENCH_hetero.json.
bench-hetero:
	$(GO) run ./cmd/acesobench hetero

# chaos runs the fault-injection harness (internal/chaos) for a short
# wall budget; it exits non-zero on any panic, invalid plan or
# non-finite score. Lengthen with CHAOS_DURATION=120s etc.
CHAOS_DURATION ?= 30s
chaos:
	$(GO) run ./cmd/acesobench -chaos-duration $(CHAOS_DURATION) chaos

# bench-search re-measures search throughput and rewrites the
# "current" block of BENCH_search.json (the recorded baseline is kept).
bench-search:
	$(GO) run ./cmd/acesobench search

# bench-guard re-measures search throughput and checks it against the
# committed BENCH_search.json without rewriting it: the explored count
# must match exactly (the search is bit-identical by contract) and
# ns/op / allocs/op must stay within the guard tolerances. Part of ci.
bench-guard:
	$(GO) run ./cmd/acesobench -guard search

# bench-scale runs the thousand-device scale benchmark (1024/2048/4096
# synthetic V100s, up to 10240-operator graphs) and rewrites
# BENCH_scale.json, exiting non-zero if any explored count drifted from
# the committed file.
bench-scale:
	$(GO) run ./cmd/acesobench scale

# serve-smoke boots the planning daemon in self-test mode on an
# ephemeral port: cold plan → exact cache hit (bytes must match) →
# SSE stream → /metrics scrape → /healthz → SIGTERM drain. Part of ci.
serve-smoke:
	$(GO) run ./cmd/acesod -smoke

# bench-serve load-tests the planserver over real HTTP (load, overload,
# drain and cache-identity phases) and rewrites BENCH_serve.json,
# exiting non-zero on any error-rate or cache-correctness gate.
bench-serve:
	$(GO) run ./cmd/acesobench serve
