GO ?= go

.PHONY: build test ci bench-search

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# ci is the pre-merge gate: vet, the full suite, race-detector runs of
# the packages that share caches across goroutines (the search workers
# and the perfmodel stage cache), and a one-iteration smoke of the
# search-throughput benchmark so hot-path regressions fail loudly.
ci: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core/... ./internal/perfmodel/...
	$(GO) test -run xxx -bench BenchmarkSearchThroughput -benchtime 1x .

# bench-search re-measures search throughput and rewrites the
# "current" block of BENCH_search.json (the recorded baseline is kept).
bench-search:
	$(GO) run ./cmd/acesobench search
